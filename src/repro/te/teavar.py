"""A TeaVaR-style availability-aware TE [6].

TeaVaR (Bogle et al., SIGCOMM 2019) "strikes the right utilization-
availability balance" by minimizing the beta-Value-at-Risk of traffic
loss over a *pruned set of failure scenarios with probabilities* -- the
paper's Table 1 contrasts it with Raha: TeaVaR handles probabilistic
failures but needs concrete demands and a tractable scenario set.

This implementation follows the original's single-allocation LP:

* one bandwidth allocation ``b_kp`` per tunnel, shared by all scenarios;
* per scenario ``q``, demand ``k`` loses the fraction of its demand the
  surviving tunnels cannot carry;
* minimize ``CVaR_beta`` of the maximum loss fraction per scenario via
  the Rockafellar-Uryasev linearization
  ``theta + E[max(loss_q - theta, 0)] / (1 - beta)``.

Scenario sets come from :func:`enumerate_scenario_set`, which keeps the
most probable up-to-k-failure scenarios -- TeaVaR's pruning.
"""

from __future__ import annotations

import math
from collections import defaultdict
from collections.abc import Mapping

from repro.exceptions import ModelingError
from repro.network.demand import Pair
from repro.network.topology import LagKey, Topology
from repro.paths.ksp import Path
from repro.paths.pathset import PathSet
from repro.solver import Model, quicksum
from repro.te.base import (
    TESolution,
    effective_capacities,
    lag_loads_from_path_flows,
    validate_te_inputs,
)


def enumerate_scenario_set(
    topology: Topology,
    max_failures: int = 2,
    max_scenarios: int = 64,
):
    """TeaVaR's pruned scenario set: most probable <= k-failure scenarios.

    Returns ``(scenario, probability)`` pairs including the all-up
    scenario, sorted by probability, with the tail mass renormalized away
    (as TeaVaR does for the scenarios it keeps).
    """
    # Imported here: repro.failures imports repro.te for its simulator.
    from repro.failures.enumeration import enumerate_scenarios
    from repro.failures.probability import scenario_log_probability
    from repro.failures.scenario import FailureScenario

    candidates = [FailureScenario()]
    candidates += list(enumerate_scenarios(
        topology, max_failures, relevant_only=False,
    ))
    weighted = [
        (s, math.exp(scenario_log_probability(topology, s)))
        for s in candidates
    ]
    weighted.sort(key=lambda item: item[1], reverse=True)
    kept = weighted[:max_scenarios]
    total = sum(p for _, p in kept)
    if total <= 0:
        raise ModelingError("scenario set has zero total probability")
    return [(s, p / total) for s, p in kept]


class TeavarTE:
    """Minimize the beta-CVaR of per-scenario traffic loss.

    Args:
        beta: Availability target (e.g. 0.99 -- losses beyond the beta
            quantile are what CVaR averages).
        scenarios: ``(scenario, probability)`` pairs; build with
            :func:`enumerate_scenario_set`.
        primary_only: Restrict tunnels to primary paths.
    """

    def __init__(self, beta: float, scenarios: list,
                 primary_only: bool = False):
        if not (0.0 < beta < 1.0):
            raise ModelingError(f"beta must be in (0, 1), got {beta}")
        if not scenarios:
            raise ModelingError("need at least one scenario")
        self.beta = beta
        self.scenarios = scenarios
        self.primary_only = primary_only

    def solve(
        self,
        topology: Topology,
        demands: Mapping[Pair, float],
        paths: PathSet,
        capacities: Mapping[LagKey, float] | None = None,
    ) -> TESolution:
        """Solve; ``objective`` is the optimal beta-CVaR of loss.

        ``pair_flows`` report the all-scenarios-up delivery; the CVaR
        value is what operators compare against their availability SLO.
        """
        validate_te_inputs(topology, demands, paths)
        caps = effective_capacities(topology, capacities)

        model = Model("teavar-te")
        allocation: dict[tuple[Pair, Path], object] = {}
        per_lag: dict[LagKey, list] = defaultdict(list)
        for pair in demands:
            dp = paths[pair]
            tunnels = dp.primaries if self.primary_only else dp.paths
            for path in tunnels:
                b = model.add_var(name=f"b[{pair}][{'-'.join(path)}]")
                allocation[(pair, path)] = b
                for lag in topology.lags_on_path(path):
                    per_lag[lag.key].append(b)
        for key, vars_on_lag in per_lag.items():
            model.add_constr(quicksum(vars_on_lag) <= caps[key],
                             name=f"cap[{key}]")

        # Scenario losses: loss_q = max_k fraction of d_k not survivable.
        theta = model.add_var(lb=0.0, ub=1.0, name="theta")
        excess_terms = []
        for q, (scenario, probability) in enumerate(self.scenarios):
            down = scenario.down_lags(topology)
            loss_q = model.add_var(lb=0.0, ub=1.0, name=f"loss[{q}]")
            residual = scenario.residual_capacities(topology)
            for pair, volume in demands.items():
                if volume <= 0:
                    continue
                dp = paths[pair]
                tunnels = dp.primaries if self.primary_only else dp.paths
                surviving = []
                for path in tunnels:
                    lags = topology.lags_on_path(path)
                    if any(lag.key in down for lag in lags):
                        continue
                    # Scale a tunnel's allocation by its worst partial-
                    # failure shrinkage along the path (TeaVaR treats
                    # LAGs as up/down; partial capacity shrinks it).
                    shrink = min(
                        (residual[lag.key] / lag.capacity)
                        if lag.capacity > 0 else 0.0
                        for lag in lags
                    )
                    if shrink > 0:
                        surviving.append(shrink * allocation[(pair, path)])
                delivered = quicksum(surviving)
                # loss_q >= 1 - delivered / d_k
                model.add_constr(
                    loss_q >= 1.0 - delivered / volume,
                    name=f"loss[{q}][{pair}]",
                )
            excess = model.add_var(lb=0.0, name=f"excess[{q}]")
            model.add_constr(excess >= loss_q - theta)
            excess_terms.append(probability * excess)

        cvar = theta + quicksum(excess_terms) / (1.0 - self.beta)
        model.set_objective(cvar, sense="min")
        result = model.solve()
        if not result.status.ok or result.x is None:
            return TESolution.infeasible()

        path_flows = {k: result.value(v) for k, v in allocation.items()}
        pair_flows: dict[Pair, float] = defaultdict(float)
        for (pair, _), value in path_flows.items():
            pair_flows[pair] += value
        for pair, volume in demands.items():
            pair_flows[pair] = min(pair_flows.get(pair, 0.0), volume)
        return TESolution(
            objective=result.objective,
            path_flows=path_flows,
            pair_flows=dict(pair_flows),
            lag_loads=lag_loads_from_path_flows(topology, path_flows),
            solve_seconds=result.solve_seconds,
        )
