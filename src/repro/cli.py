"""Command-line interface: ``python -m repro <command>``.

Commands mirror Raha's two operational modes plus utilities:

* ``analyze`` -- find the worst probable degradation of a topology
  (fixed or variable demands) and print an operator report.  A comma
  list of ``--threshold`` values fans out through the sweep runner
  (``--jobs`` worker processes, resumable with ``--resume``).
* ``sweep``  -- run a declarative sweep campaign (a JSON
  :class:`~repro.runner.jobs.SweepSpec`) in parallel, with a
  content-addressed result cache and a resumable journal.
* ``augment`` -- compute the capacity augment that removes all probable
  degradations.
* ``paths`` -- compute and save a k-shortest-path configuration.
* ``fig2``   -- the max-simultaneous-failures envelope of a topology.
* ``serve`` / ``client`` -- the persistent queue-backed analysis
  service and its HTTP client (see :mod:`repro.service`).
* ``worker`` -- a remote worker agent pulling jobs from a running
  service over its fenced claim protocol (see :mod:`repro.distrib`);
  pair with ``serve --no-local-workers`` for a pure coordinator.
* ``cache``  -- inspect (``stats``) or evict (``prune``) a result
  cache; live service jobs' entries are never pruned.
* ``bench``  -- run the benchmark suite and gate on performance
  regressions against a committed baseline (see :mod:`repro.bench`).

Topologies are JSON (see :mod:`repro.network.serialization`) or GraphML;
demands and paths are JSON.  Example round trip::

    python -m repro paths --topology wan.json --pairs all \\
        --primary 4 --backup 1 --out paths.json
    python -m repro analyze --topology wan.json --paths paths.json \\
        --demands demands.json --threshold 1e-4 --report report.txt
    python -m repro sweep --spec campaign.json --jobs 4
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core.analyzer import RahaAnalyzer
from repro.core.augment import augment_existing_lags
from repro.core.config import MAX_DEFAULT_WORKERS, RahaConfig
from repro.core.report import degradation_report
from repro.network import serialization as ser
from repro.network.demand import all_pairs, demand_envelope
from repro.network.topology import Topology
from repro.paths.pathset import PathSet

#: Exit code when one or more sweep jobs settled with a structured error.
EXIT_SWEEP_ERRORS = 4

#: Exit code when ``analyze --allow-partial`` returned only an
#: LP-relaxation bound (no incumbent within the time limits) -- usable,
#: but distinguishable from a full result in scripts.
EXIT_PARTIAL = 5

#: Exit code when a sweep was interrupted by SIGINT/SIGTERM and drained
#: gracefully (the conventional 128 + SIGINT).  Settled results are
#: written; rerun with ``--resume`` to finish the rest.
EXIT_INTERRUPTED = 130


def _load_topology(path: str) -> Topology:
    if path.endswith((".graphml", ".xml")):
        from repro.network.graphml import read_graphml

        return read_graphml(path)
    return ser.topology_from_dict(ser.load_json(path))


def _load_topology_doc(path: str) -> dict:
    """A topology as its serialized document (for sweep job payloads)."""
    if path.endswith((".graphml", ".xml")):
        from repro.network.graphml import read_graphml

        return ser.topology_to_dict(read_graphml(path))
    return ser.load_json(path)


def _load_paths(path: str) -> PathSet:
    return ser.paths_from_dict(ser.load_json(path))


def _load_demands(path: str):
    return ser.demands_from_dict(ser.load_json(path))


def _cmd_paths(args) -> int:
    topology = _load_topology(args.topology)
    if args.pairs == "all":
        pairs = all_pairs(topology)
    else:
        pairs = [tuple(p.split("~", 1)) for p in args.pairs.split(",")]
    paths = PathSet.k_shortest(topology, pairs, num_primary=args.primary,
                               num_backup=args.backup)
    ser.save_json(ser.paths_to_dict(paths), args.out)
    print(f"wrote {len(paths)} demands' paths to {args.out}")
    return 0


def _parse_thresholds(text: str | None) -> list[float | None]:
    """``"1e-4"`` -> one threshold; ``"1e-2,1e-4"`` -> a sweep."""
    if text is None:
        return [None]
    values = [float(token) for token in text.split(",") if token.strip()]
    return values or [None]


def _sweep_state(workdir: Path, use_cache: bool = True):
    """The cache + journal pair living under a campaign's workdir."""
    from repro.runner.cache import ResultCache
    from repro.runner.journal import Journal

    workdir.mkdir(parents=True, exist_ok=True)
    cache = ResultCache(workdir / "cache") if use_cache else None
    return cache, Journal(workdir / "journal.jsonl")


def _run_campaign(spec, args, workdir: Path, use_cache: bool = True):
    """Shared sweep execution for the analyze/sweep commands."""
    from repro.core.config import RunnerConfig
    from repro.runner.executor import run_sweep
    from repro.runner.progress import print_progress

    cache, journal = _sweep_state(workdir, use_cache=use_cache)
    config = RunnerConfig(num_workers=args.jobs,
                          retries=getattr(args, "retries", 1))
    progress = None if getattr(args, "quiet", False) else print_progress
    chaos = None
    chaos_arg = getattr(args, "chaos", None)
    if chaos_arg:
        from repro.resilience import FaultPlan

        chaos = FaultPlan.from_arg(chaos_arg)
        print(f"chaos: injecting {len(chaos.points)} fault point(s) "
              f"(seed {chaos.seed}) -- self-test mode", file=sys.stderr)
    trace_path = getattr(args, "trace", None)
    if not trace_path:
        return run_sweep(spec, cache=cache, journal=journal,
                         resume=args.resume, progress=progress,
                         config=config, chaos=chaos)
    from repro.obs import JsonlTraceWriter, Tracer, metrics

    writer = JsonlTraceWriter(
        trace_path, name=getattr(spec, "name", None) or "sweep")
    tracer = Tracer(sink=writer.write)
    try:
        outcome = run_sweep(spec, cache=cache, journal=journal,
                            resume=args.resume, progress=progress,
                            config=config, chaos=chaos, tracer=tracer)
    finally:
        writer.close(metrics().snapshot())
    print(f"trace: {trace_path}", file=sys.stderr)
    return outcome


def _write_sweep_results(outcome, spec, path: Path) -> dict:
    """Persist a machine-readable campaign summary; returns the doc."""
    document = {
        "schema": ser.SCHEMA_VERSION,
        "kind": "sweep_results",
        "name": spec.name,
        "spec_hash": spec.spec_hash,
        "summary": {
            "total": len(outcome.outcomes),
            "counts": outcome.counts(),
            "cached": outcome.num_cached,
            "errors": outcome.num_errors,
            "wall_seconds": round(outcome.wall_seconds, 3),
            "solver_seconds": round(outcome.solver_seconds, 3),
        },
        "jobs": [
            {
                "key": o.job.key,
                "label": o.job.label,
                "params": o.job.params,
                "status": o.status,
                "attempts": o.attempts,
                "result": o.result,
                "error": o.error,
            }
            for o in outcome.outcomes
        ],
    }
    ser.save_json(document, str(path))
    return document


def _print_sweep_table(outcome, title: str) -> None:
    from repro.analysis.reporting import print_table

    rows = []
    for o in outcome.outcomes:
        result = o.result or {}
        threshold = result.get("threshold", o.job.params.get("threshold"))
        budget = result.get("max_failures", o.job.params.get("max_failures"))
        rows.append((
            result.get("demand_mode", o.job.params.get("demand_mode", "-")),
            "-" if threshold is None else threshold,
            "inf" if budget is None else budget,
            result.get("normalized_degradation", "-"),
            o.status,
        ))
    print_table(title, ["mode", "threshold", "max failures",
                        "degradation", "status"], rows)


def _print_sweep_summary(outcome) -> None:
    counts = ", ".join(f"{n} {status}"
                       for status, n in sorted(outcome.counts().items()))
    print(f"sweep: {len(outcome.outcomes)} jobs ({counts}); "
          f"wall {outcome.wall_seconds:.1f}s, "
          f"solver {outcome.solver_seconds:.1f}s")
    totals = outcome.stats_totals()
    if totals["jobs_with_stats"]:
        print(f"telemetry: {int(totals['jobs_with_stats'])} jobs reported "
              f"stats; build {totals['build_seconds']:.2f}s, "
              f"compile {totals['compile_seconds']:.2f}s, "
              f"solve {totals['solve_seconds']:.2f}s, "
              f"max |coef| {totals['max_abs_coefficient']:.3g}")
    phases = outcome.phase_totals()
    if phases:
        ranked = sorted(phases.items(), key=lambda kv: -kv[1]["seconds"])
        rendered = ", ".join(
            f"{name} {entry['seconds']:.2f}s x{int(entry['count'])}"
            for name, entry in ranked[:8]
        )
        print(f"phases: {rendered}")


def _cmd_sweep(args) -> int:
    from repro.runner.jobs import SweepSpec

    spec = SweepSpec.from_file(args.spec)
    workdir = Path(args.workdir) if args.workdir \
        else Path(args.spec).with_suffix("").with_name(
            Path(args.spec).stem + ".sweep")
    outcome = _run_campaign(spec, args, workdir,
                            use_cache=not args.no_cache)
    _print_sweep_table(outcome, f"sweep {spec.name}: "
                                f"{len(outcome.outcomes)} jobs")
    _print_sweep_summary(outcome)
    results_path = workdir / "results.json"
    _write_sweep_results(outcome, spec, results_path)
    if args.out:
        _write_sweep_results(outcome, spec, Path(args.out))
    print(f"results: {results_path}")
    if outcome.interrupted:
        print(f"interrupted: {len(outcome.outcomes)} job(s) settled; "
              f"rerun with --resume to finish the rest", file=sys.stderr)
        return EXIT_INTERRUPTED
    return EXIT_SWEEP_ERRORS if outcome.num_errors else 0


def _analyze_sweep(args, thresholds: list[float | None]) -> int:
    """``analyze`` with a threshold list: fan out through the runner."""
    from repro.runner.jobs import SweepSpec

    spec = SweepSpec(
        instance={
            "topology": _load_topology_doc(args.topology),
            "demands": ser.load_json(args.demands),
            "paths": ser.load_json(args.paths),
        },
        base={
            "demand_mode": "variable" if args.variable else "fixed",
            "slack": args.slack,
            "max_failures": args.max_failures,
            "connected_enforced": args.connected_enforced,
            "time_limit": args.time_limit,
            # Only present when requested, so enabling it never
            # invalidates existing cache keys of normal runs.
            **({"allow_partial": True} if args.allow_partial else {}),
        },
        cells=[{"threshold": t} for t in thresholds],
        name="analyze",
    )
    workdir = Path(args.workdir) if args.workdir \
        else Path(args.topology + ".sweep")
    outcome = _run_campaign(spec, args, workdir)
    _print_sweep_table(
        outcome, f"analyze: degradation vs threshold ({len(thresholds)} jobs)")
    _print_sweep_summary(outcome)
    if args.out:
        _write_sweep_results(outcome, spec, Path(args.out))
    if outcome.interrupted:
        print(f"interrupted: {len(outcome.outcomes)} job(s) settled; "
              f"rerun with --resume to finish the rest", file=sys.stderr)
        return EXIT_INTERRUPTED
    if outcome.num_errors:
        return EXIT_SWEEP_ERRORS
    if args.tolerance is not None:
        worst = max(r["normalized_degradation"] for r in outcome.results())
        return 2 if worst > args.tolerance else 0
    return 0


def _print_solver_stats(stats: dict | None) -> None:
    """Render the per-solve telemetry block behind ``analyze --stats``."""
    if not stats:
        print("solver stats: not recorded for this result")
        return
    print("solver stats:")
    print(f"  matrix: {stats.get('rows', 0)} rows x "
          f"{stats.get('cols', 0)} cols, {stats.get('nnz', 0)} nonzeros, "
          f"{stats.get('num_integer', 0)} integer vars")
    print(f"  time: build {stats.get('build_seconds', 0.0):.3f}s, "
          f"compile {stats.get('compile_seconds', 0.0):.3f}s, "
          f"solve {stats.get('solve_seconds', 0.0):.3f}s")
    print(f"  conditioning: max |coef| "
          f"{stats.get('max_abs_coefficient', 0.0):.3g}, "
          f"max |rhs| {stats.get('max_abs_rhs', 0.0):.3g}")
    print(f"  backend: {stats.get('backend', '?')} "
          f"(duals: {stats.get('dual_mode', '?')}, "
          f"incremental: {stats.get('incremental', False)}, "
          f"compile cached: {stats.get('compile_cached', False)})")


def _partial_report(result) -> str:
    """Operator-facing rendering of a PartialResult (bound, no witness)."""
    lines = [
        result.summary(),
        "",
        "This is a BOUND, not an exact worst case: the MILP found no",
        "incumbent within its time limits, so the LP relaxation's optimum",
        "is reported instead (it can only over-estimate the degradation).",
        "No witness demand matrix or failure scenario is available.",
        "",
        "provenance:",
    ]
    lines += [f"  - {step}" for step in result.provenance]
    return "\n".join(lines)


def _cmd_analyze(args) -> int:
    thresholds = _parse_thresholds(args.threshold)
    if len(thresholds) > 1:
        return _analyze_sweep(args, thresholds)
    threshold = thresholds[0]
    topology = _load_topology(args.topology)
    paths = _load_paths(args.paths)
    demands = _load_demands(args.demands)
    kwargs = dict(
        probability_threshold=threshold,
        max_failures=args.max_failures,
        connected_enforced=args.connected_enforced,
        time_limit=args.time_limit,
    )
    if args.allow_partial:
        from repro.core.config import ResilienceConfig

        kwargs["resilience"] = ResilienceConfig(allow_partial=True)
    if args.variable:
        config = RahaConfig(
            demand_bounds=demand_envelope(demands, slack=args.slack),
            **kwargs,
        )
    else:
        config = RahaConfig(fixed_demands=dict(demands), **kwargs)
    analyzer = RahaAnalyzer(topology, paths, config)
    if args.trace:
        from repro.obs import JsonlTraceWriter, Tracer, metrics, tracing

        writer = JsonlTraceWriter(args.trace, name="analyze")
        try:
            with tracing(Tracer(sink=writer.write)):
                result = analyzer.analyze()
        finally:
            writer.close(metrics().snapshot())
        print(f"trace: {args.trace}", file=sys.stderr)
    else:
        result = analyzer.analyze()
    if result.is_partial:
        report = _partial_report(result)
        print(report)
        if args.report:
            with open(args.report, "w") as handle:
                handle.write(report + "\n")
        if args.out:
            ser.save_json({
                "kind": "partial_result",
                "status": result.status,
                "objective": result.objective,
                "degradation_bound": result.bound,
                "normalized_bound": result.normalized_bound,
                "provenance": list(result.provenance),
                "time_limits_tried": list(result.time_limits_tried),
                "solve_seconds": result.solve_seconds,
                "encode_seconds": result.encode_seconds,
                "solver_stats": result.solver_stats,
            }, args.out)
        return EXIT_PARTIAL
    report = degradation_report(topology, paths, result)
    print(report)
    if args.stats:
        _print_solver_stats(result.solver_stats)
    if args.report:
        with open(args.report, "w") as handle:
            handle.write(report + "\n")
    if args.out:
        ser.save_json(ser.result_to_dict(result), args.out)
    if args.tolerance is not None:
        return 2 if result.normalized_degradation > args.tolerance else 0
    return 0


def _cmd_augment(args) -> int:
    topology = _load_topology(args.topology)
    paths = _load_paths(args.paths)
    demands = _load_demands(args.demands)
    config = RahaConfig(
        fixed_demands=dict(demands),
        probability_threshold=args.threshold,
        max_failures=args.max_failures,
        time_limit=args.time_limit,
    )
    result = augment_existing_lags(
        topology, paths, config,
        link_capacity=args.link_capacity,
        new_links_can_fail=not args.reliable,
        max_steps=args.max_steps,
    )
    print(f"initial degradation: {result.initial_degradation:g}")
    for i, step in enumerate(result.steps, 1):
        adds = ", ".join(f"{k[0]}-{k[1]} +{n}"
                         for k, n in sorted(step.links_added.items()))
        print(f"step {i}: degradation {step.degradation_before:g}; "
              f"added {adds}")
    print(f"converged: {result.converged} "
          f"({result.total_links_added} links in {result.num_steps} steps)")
    if args.out:
        ser.save_json(ser.topology_to_dict(result.topology), args.out)
        print(f"wrote augmented topology to {args.out}")
    return 0 if result.converged else 3


def _cmd_availability(args) -> int:
    from repro.core.config import MonteCarloConfig
    from repro.failures.availability import estimate_availability_parallel

    topology = _load_topology(args.topology)
    paths = _load_paths(args.paths)
    demands = _load_demands(args.demands)
    config = MonteCarloConfig(
        samples=args.samples,
        seed=args.seed,
        degradation_threshold=args.threshold_traffic,
        num_workers=args.jobs,
        chunk_size=args.chunk_size,
        ci_width=args.ci_width,
        max_samples=args.max_samples,
    )
    chaos = None
    if args.chaos:
        from repro.resilience import FaultPlan

        chaos = FaultPlan.from_arg(args.chaos)
    cache = None
    if not args.no_cache:
        if args.workdir:
            cache = Path(args.workdir) / "cache"
        else:
            cache = Path(args.topology).with_suffix("").with_name(
                Path(args.topology).stem + ".avail") / "cache"
        cache.parent.mkdir(parents=True, exist_ok=True)

    def run():
        return estimate_availability_parallel(
            topology, dict(demands), paths, config,
            cache=cache, chaos=chaos,
        )

    if args.trace:
        from repro.obs import JsonlTraceWriter, Tracer, metrics, tracing

        writer = JsonlTraceWriter(args.trace, name="availability")
        try:
            with tracing(Tracer(sink=writer.write)):
                estimate = run()
        finally:
            writer.close(metrics().snapshot())
        print(f"trace: {args.trace}", file=sys.stderr)
    else:
        estimate = run()
    print(f"samples: {estimate.samples}")
    print(f"distinct scenarios: {estimate.distinct_scenarios} "
          f"(cache hits {estimate.cache_hits}, "
          f"fresh solves {estimate.fresh_solves})")
    if estimate.chunk_fallbacks:
        print(f"chunk fallbacks: {estimate.chunk_fallbacks}")
    if estimate.ci_width is not None:
        print(f"rounds: {estimate.rounds}  ci width: {estimate.ci_width:g}")
    print(f"healthy flow: {estimate.healthy_flow:g}")
    print(f"expected degradation: {estimate.expected_degradation:g}")
    print(f"availability: {estimate.availability:.6f}")
    print(f"P(degradation > {args.threshold_traffic:g}): "
          f"{estimate.exceedance_probability:.4f}")
    print(f"p95 degradation: {estimate.quantile(0.95):g}")
    print(f"worst sampled: {estimate.worst_sampled:g} "
          f"({estimate.worst_scenario})")
    if args.out:
        payload = {
            "samples": estimate.samples,
            "healthy_flow": estimate.healthy_flow,
            "expected_degradation": estimate.expected_degradation,
            "availability": estimate.availability,
            "exceedance_probability": estimate.exceedance_probability,
            "worst_sampled": estimate.worst_sampled,
            "distinct_scenarios": estimate.distinct_scenarios,
            "cache_hits": estimate.cache_hits,
            "fresh_solves": estimate.fresh_solves,
            "chunk_fallbacks": estimate.chunk_fallbacks,
            "rounds": estimate.rounds,
            "ci_width": estimate.ci_width,
        }
        with open(args.out, "w") as handle:
            json.dump(payload, handle, indent=2)
    return 0


def _cmd_continents(args) -> int:
    from repro.analysis.continental import analyze_continents

    topology = _load_topology(args.topology)
    demands = _load_demands(args.demands)
    with open(args.assignment) as handle:
        assignment = json.load(handle)
    findings = analyze_continents(
        topology, assignment, dict(demands),
        num_primary=args.primary, num_backup=args.backup,
        probability_threshold=args.threshold,
        time_limit=args.time_limit,
    )
    worst = 0.0
    for finding in findings:
        if finding.result is None:
            print(f"{finding.name}: skipped ({finding.skipped_reason})")
            continue
        result = finding.result
        print(f"{finding.name}: {result.summary()}")
        if finding.skipped_reason:
            print(f"  note: {finding.skipped_reason}")
        worst = max(worst, result.normalized_degradation)
    if args.tolerance is not None:
        return 2 if worst > args.tolerance else 0
    return 0


def _cmd_fig2(args) -> int:
    from repro.failures.probability import max_simultaneous_failures

    topology = _load_topology(args.topology)
    rows = []
    for token in args.thresholds.split(","):
        threshold = float(token)
        count, _ = max_simultaneous_failures(topology, threshold)
        rows.append((threshold, count))
        print(f"T={threshold:g}: up to {count} simultaneous link failures")
    if args.out:
        with open(args.out, "w") as handle:
            json.dump([{"threshold": t, "max_failures": c}
                       for t, c in rows], handle, indent=2)
    return 0


def _service_config_from_args(args):
    from repro.core.config import (
        DistribConfig,
        ServiceConfig,
        SupervisionConfig,
    )

    return ServiceConfig(
        host=args.host,
        port=args.port,
        num_workers=args.workers,
        max_queue_depth=args.max_queue_depth,
        max_inflight_per_client=args.max_inflight,
        result_ttl_seconds=args.result_ttl,
        result_max_bytes=args.result_max_bytes,
        drain_timeout_seconds=args.drain_timeout,
        isolate_jobs=not args.no_isolate,
        local_workers=not args.no_local_workers,
        max_body_bytes=args.max_body_bytes,
        supervision=SupervisionConfig(
            lease_seconds=args.lease_seconds,
            reap_interval_seconds=args.reap_interval,
            max_job_attempts=args.max_attempts,
        ),
        distrib=DistribConfig(
            max_claims_per_second=args.max_claims_per_second,
        ),
    )


def _cmd_serve(args) -> int:
    from repro.service import api
    from repro.service import store as store_module

    # In a real server process, injected service crashes must behave
    # like kill -9 (hard exit), not like catchable exceptions -- that
    # is the whole point of the crash-recovery tests.
    store_module.HARD_FAULTS = True
    if args.chaos:
        from repro.resilience import FaultPlan
        from repro.resilience.faults import install_plan

        plan = FaultPlan.from_arg(args.chaos)
        install_plan(plan)
        print(f"chaos: injecting {len(plan.points)} fault point(s) "
              f"(seed {plan.seed}) -- crash faults HARD-EXIT the server",
              file=sys.stderr)
    service = api.AnalysisService(args.workdir,
                                  config=_service_config_from_args(args))
    server = api.make_server(service)
    state_path = api.write_state_file(service, server)
    host, port = server.server_address[0], server.server_address[1]
    print(f"serving on http://{host}:{port} "
          f"(workdir {args.workdir}, {service.config.num_workers} workers); "
          f"state: {state_path}", file=sys.stderr)
    if not args.trace:
        api.serve_forever(service, server)
        return 0
    from repro.obs import JsonlTraceWriter, Tracer, metrics, tracing

    writer = JsonlTraceWriter(args.trace, name="service")
    try:
        with tracing(Tracer(sink=writer.write)):
            api.serve_forever(service, server)
    finally:
        writer.close(metrics().snapshot())
    print(f"trace: {args.trace}", file=sys.stderr)
    return 0


def _cmd_worker(args) -> int:
    from repro.core.config import DistribConfig
    from repro.distrib.worker import run_worker

    if args.chaos:
        from repro.resilience import FaultPlan
        from repro.resilience.faults import install_plan

        plan = FaultPlan.from_arg(args.chaos)
        install_plan(plan)
        print(f"chaos: injecting {len(plan.points)} fault point(s) "
              f"(seed {plan.seed})", file=sys.stderr)
    config = DistribConfig(
        num_workers=args.workers,
        lease_seconds=args.lease_seconds,
        heartbeat_interval_seconds=args.heartbeat_interval,
        poll_interval_seconds=args.poll_interval,
        drain_timeout_seconds=args.drain_timeout,
        request_timeout_seconds=args.timeout,
        retries=args.retries,
    )
    print(f"worker pulling from {args.connect} "
          f"({config.num_workers} slot(s))", file=sys.stderr)
    return run_worker(args.connect, config=config, worker_id=args.name,
                      cache_dir=args.cache,
                      isolate_jobs=not args.no_isolate)


def _service_client(args):
    from repro.service.client import ServiceClient

    url = args.url
    if not url:
        state_path = Path(args.workdir or ".") / "service.json"
        if not state_path.exists():
            raise SystemExit(
                f"no --url given and no service state at {state_path}; "
                f"start a server with 'repro serve' or pass --url")
        state = json.loads(state_path.read_text())
        url = state["url"]
    return ServiceClient(url, client_id=args.client,
                         timeout=args.timeout)


def _print_doc(doc: dict, out: str | None) -> None:
    text = json.dumps(doc, indent=2, sort_keys=True)
    if out:
        Path(out).write_text(text + "\n")
        print(f"wrote {out}")
    else:
        print(text)


def _cmd_client(args) -> int:
    from repro.exceptions import AdmissionError, ServiceError

    if args.action == "submit" and not args.spec:
        raise SystemExit("client submit requires --spec")
    if args.action in ("status", "result", "cancel", "retry") \
            and not args.id:
        raise SystemExit(f"client {args.action} requires --id")
    client = _service_client(args)
    try:
        if args.action == "submit":
            from repro.runner.jobs import SweepSpec

            # from_file embeds any instance file references client-side,
            # so the document crossing the wire is self-contained (the
            # server rejects path strings).
            spec = SweepSpec.from_file(args.spec)
            doc = client.submit(spec.to_dict(), priority=args.priority,
                                deadline_seconds=args.deadline)
            print(f"analysis {doc['id']}: "
                  f"{'deduped' if doc.get('deduped') else 'accepted'} "
                  f"({doc['total_jobs']} jobs)")
            if args.wait:
                _print_doc(client.wait(doc["id"], timeout=args.timeout_wait),
                           args.out)
            return 0
        if args.action == "status":
            _print_doc(client.status(args.id), args.out)
            return 0
        if args.action == "result":
            doc = client.result(args.id)
            if doc is None:
                status = client.status(args.id)
                print(f"analysis {args.id} is {status['state']} "
                      f"({status['counts']})", file=sys.stderr)
                return 6
            _print_doc(doc, args.out)
            return 0
        if args.action == "cancel":
            doc = client.cancel(args.id)
            print(f"cancelled {doc['cancelled']} queued job(s), "
                  f"{doc.get('cancelling', 0)} running job(s) asked to "
                  f"stop; {doc['note']}")
            return 0
        if args.action == "quarantine":
            _print_doc(client.quarantine(args.id), args.out)
            return 0
        if args.action == "retry":
            doc = client.retry(args.id)
            print(f"requeued {doc['retried']} quarantined job(s) of "
                  f"analysis {doc['id']}")
            return 0
        if args.action == "health":
            _print_doc(client.health(), args.out)
            return 0
    except AdmissionError as exc:
        print(f"shed: {exc} (retry after "
              f"{exc.retry_after or '?'}s)", file=sys.stderr)
        return 7
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    raise SystemExit(f"unknown client action {args.action!r}")


def _cmd_cache(args) -> int:
    from repro.runner.cache import ResultCache

    workdir = Path(args.workdir)
    cache_dir = workdir / "cache" if (workdir / "cache").is_dir() \
        else workdir
    cache = ResultCache(cache_dir)
    if args.action == "stats":
        _print_doc(cache.stats(), None)
        return 0
    # prune: never evict entries referenced by live jobs of a service
    # sharing this workdir.
    protected: set[str] = set()
    db_path = workdir / "service.db"
    if db_path.exists():
        from repro.service.store import JobStore

        store = JobStore(db_path)
        try:
            protected = store.live_keys()
        finally:
            store.close()
    report = cache.prune(max_bytes=args.max_bytes,
                         ttl_seconds=args.ttl,
                         protected=protected)
    print(f"pruned {report['removed']} entries "
          f"({report['removed_bytes']} bytes); kept {report['kept']} "
          f"({report['kept_bytes']} bytes, "
          f"{report['protected_kept']} protected)")
    if report["tmp_removed"]:
        print(f"swept {report['tmp_removed']} stale temp file(s) "
              f"({report['tmp_removed_bytes']} bytes) orphaned by "
              f"crashed writes")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The repro CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Raha: analyze probable worst-case WAN degradation.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_paths = sub.add_parser("paths", help="compute k-shortest paths")
    p_paths.add_argument("--topology", required=True)
    p_paths.add_argument("--pairs", default="all",
                         help='"all" or comma list like "a~b,c~d"')
    p_paths.add_argument("--primary", type=int, default=4)
    p_paths.add_argument("--backup", type=int, default=1)
    p_paths.add_argument("--out", required=True)
    p_paths.set_defaults(func=_cmd_paths)

    p_an = sub.add_parser("analyze", help="find the worst degradation")
    p_an.add_argument("--topology", required=True)
    p_an.add_argument("--paths", required=True)
    p_an.add_argument("--demands", required=True)
    p_an.add_argument("--variable", action="store_true",
                      help="treat demands as envelope upper bounds")
    p_an.add_argument("--slack", type=float, default=0.0)
    p_an.add_argument("--threshold", default=None,
                      help="probability threshold T; a comma list "
                           "(e.g. 1e-2,1e-4,1e-7) sweeps them in parallel "
                           "through the job runner")
    p_an.add_argument("--max-failures", type=int, default=None)
    p_an.add_argument("--connected-enforced", action="store_true")
    p_an.add_argument("--time-limit", type=float, default=1000.0)
    p_an.add_argument("--jobs", type=int, default=None, metavar="N",
                      help="worker processes for threshold sweeps "
                           "(default: cpu_count - 1, capped at "
                           f"{MAX_DEFAULT_WORKERS})")
    p_an.add_argument("--resume", action="store_true",
                      help="resume an interrupted threshold sweep from its "
                           "workdir journal (finishes only remaining jobs)")
    p_an.add_argument("--workdir", default=None,
                      help="sweep state directory (cache + journal); "
                           "default: <topology>.sweep")
    p_an.add_argument("--allow-partial", action="store_true",
                      help="when the MILP finds no incumbent within its "
                           "time limits, report an LP-relaxation bound "
                           f"(exit {EXIT_PARTIAL}) instead of failing")
    p_an.add_argument("--tolerance", type=float, default=None,
                      help="exit 2 when normalized degradation exceeds this")
    p_an.add_argument("--stats", action="store_true",
                      help="print per-solve telemetry (matrix size, "
                           "build/compile/solve split, big-M magnitudes)")
    p_an.add_argument("--trace", default=None, metavar="FILE",
                      help="write a structured JSONL trace (nested spans "
                           "for encode/compile/solve/verify plus a metrics "
                           "snapshot; see docs/operations.md "
                           "'Observability')")
    p_an.add_argument("--report", default=None)
    p_an.add_argument("--out", default=None)
    p_an.set_defaults(func=_cmd_analyze)

    p_sw = sub.add_parser(
        "sweep",
        help="run a declarative sweep campaign (parallel, cached, resumable)")
    p_sw.add_argument("--spec", required=True,
                      help="sweep spec JSON (kind: sweep_spec; see "
                           "docs/operations.md 'Running sweeps')")
    p_sw.add_argument("--jobs", type=int, default=None, metavar="N",
                      help="worker processes (default: cpu_count - 1, "
                           f"capped at {MAX_DEFAULT_WORKERS}; 1 = in-process)")
    p_sw.add_argument("--resume", action="store_true",
                      help="replay the journal and run only unsettled jobs")
    p_sw.add_argument("--workdir", default=None,
                      help="campaign state directory (cache/, journal.jsonl, "
                           "results.json); default: <spec stem>.sweep next "
                           "to the spec")
    p_sw.add_argument("--retries", type=int, default=1,
                      help="re-attempts for failed/crashed/timed-out jobs")
    p_sw.add_argument("--no-cache", action="store_true",
                      help="disable the content-addressed result cache")
    p_sw.add_argument("--chaos", default=None, metavar="PLAN",
                      help="fault-injection self-test: a FaultPlan JSON "
                           "document or a path to one (see docs/"
                           "operations.md 'Chaos testing'); deterministic "
                           "faults are injected into workers, cache "
                           "writes, and journal appends")
    p_sw.add_argument("--trace", default=None, metavar="FILE",
                      help="write a campaign-wide JSONL trace: per-job "
                           "spans with each worker's encode/compile/solve "
                           "spans merged beneath them (see docs/"
                           "operations.md 'Observability')")
    p_sw.add_argument("--quiet", action="store_true",
                      help="suppress per-job progress lines on stderr")
    p_sw.add_argument("--out", default=None,
                      help="also write the results document here")
    p_sw.set_defaults(func=_cmd_sweep)

    p_aug = sub.add_parser("augment", help="compute a capacity augment")
    p_aug.add_argument("--topology", required=True)
    p_aug.add_argument("--paths", required=True)
    p_aug.add_argument("--demands", required=True)
    p_aug.add_argument("--threshold", type=float, default=None)
    p_aug.add_argument("--max-failures", type=int, default=None)
    p_aug.add_argument("--link-capacity", type=float, default=None)
    p_aug.add_argument("--reliable", action="store_true",
                       help="assume added capacity cannot fail")
    p_aug.add_argument("--max-steps", type=int, default=10)
    p_aug.add_argument("--time-limit", type=float, default=1000.0)
    p_aug.add_argument("--out", default=None)
    p_aug.set_defaults(func=_cmd_augment)

    p_ct = sub.add_parser("continents",
                          help="per-continent analysis (paper Section 9)")
    p_ct.add_argument("--topology", required=True)
    p_ct.add_argument("--demands", required=True)
    p_ct.add_argument("--assignment", required=True,
                      help='JSON mapping node -> continent name')
    p_ct.add_argument("--primary", type=int, default=2)
    p_ct.add_argument("--backup", type=int, default=1)
    p_ct.add_argument("--threshold", type=float, default=1e-4)
    p_ct.add_argument("--time-limit", type=float, default=600.0)
    p_ct.add_argument("--tolerance", type=float, default=None,
                      help="exit 2 when any piece exceeds this")
    p_ct.set_defaults(func=_cmd_continents)

    p_av = sub.add_parser("availability",
                          help="Monte Carlo availability estimate")
    p_av.add_argument("--topology", required=True)
    p_av.add_argument("--paths", required=True)
    p_av.add_argument("--demands", required=True)
    p_av.add_argument("--samples", type=int, default=200)
    p_av.add_argument("--threshold-traffic", type=float, default=0.0,
                      help="exceedance statistic threshold (traffic units)")
    p_av.add_argument("--seed", type=int, default=0)
    p_av.add_argument("--jobs", type=int, default=None,
                      help="worker processes (default: cpu count - 1, "
                           "capped at 8)")
    p_av.add_argument("--chunk-size", type=int, default=32,
                      help="distinct scenarios per worker chunk; fixed "
                           "chunking keeps estimates identical across "
                           "--jobs settings")
    p_av.add_argument("--ci-width", type=float, default=None,
                      help="keep sampling in rounds of --samples until the "
                           "availability CI is this wide (adaptive "
                           "stopping)")
    p_av.add_argument("--max-samples", type=int, default=None,
                      help="adaptive-stopping sample cap "
                           "(default: 20x --samples)")
    p_av.add_argument("--workdir", default=None,
                      help="directory for the delivered-flow cache "
                           "(default: <topology>.avail/)")
    p_av.add_argument("--no-cache", action="store_true",
                      help="skip the persistent delivered-flow cache")
    p_av.add_argument("--chaos", default=None,
                      help="fault plan (inline JSON or file) for "
                           "self-testing graceful degradation")
    p_av.add_argument("--trace", default=None,
                      help="write a JSONL trace of the estimation run")
    p_av.add_argument("--out", default=None)
    p_av.set_defaults(func=_cmd_availability)

    p_f2 = sub.add_parser("fig2", help="max simultaneous failures vs T")
    p_f2.add_argument("--topology", required=True)
    p_f2.add_argument("--thresholds", default="1e-5,1e-4,1e-3,1e-2,1e-1")
    p_f2.add_argument("--out", default=None)
    p_f2.set_defaults(func=_cmd_fig2)

    p_sv = sub.add_parser(
        "serve",
        help="run the queue-backed analysis service (HTTP API)")
    p_sv.add_argument("--workdir", required=True,
                      help="service state directory (service.db, cache/, "
                           "service.json)")
    p_sv.add_argument("--host", default="127.0.0.1")
    p_sv.add_argument("--port", type=int, default=8080,
                      help="0 = ephemeral (the bound port lands in "
                           "<workdir>/service.json)")
    p_sv.add_argument("--workers", type=int, default=2,
                      help="scheduler worker threads")
    p_sv.add_argument("--max-queue-depth", type=int, default=1024,
                      help="global live-job cap; beyond it submissions "
                           "are shed with 429 + Retry-After")
    p_sv.add_argument("--max-inflight", type=int, default=64,
                      help="per-client live-job cap")
    p_sv.add_argument("--result-ttl", type=float, default=None,
                      metavar="SECONDS",
                      help="evict results older than this")
    p_sv.add_argument("--result-max-bytes", type=int, default=None,
                      metavar="N",
                      help="result store size cap (oldest evicted first)")
    p_sv.add_argument("--drain-timeout", type=float, default=30.0,
                      help="seconds to let in-flight jobs settle on "
                           "shutdown before leaving them for recovery")
    p_sv.add_argument("--lease-seconds", type=float, default=60.0,
                      help="job lease duration; a worker that stops "
                           "heartbeating loses its job to the reaper "
                           "after this long")
    p_sv.add_argument("--reap-interval", type=float, default=None,
                      metavar="SECONDS",
                      help="reaper pass cadence (default: half the "
                           "lease)")
    p_sv.add_argument("--max-attempts", type=int, default=5,
                      help="store-level claim budget per job; beyond it "
                           "the job is quarantined instead of requeued")
    p_sv.add_argument("--no-isolate", action="store_true",
                      help="run jobs on scheduler threads instead of "
                           "worker processes (faster, less robust)")
    p_sv.add_argument("--no-local-workers", action="store_true",
                      help="pure coordinator: no local worker threads; "
                           "execution belongs to remote 'repro worker' "
                           "agents claiming over HTTP")
    p_sv.add_argument("--max-body-bytes", type=int,
                      default=64 * 1024 * 1024, metavar="N",
                      help="reject request bodies larger than this "
                           "with HTTP 413 before reading them")
    p_sv.add_argument("--max-claims-per-second", type=float, default=None,
                      metavar="RATE",
                      help="shed fleet claim requests beyond this rate "
                           "with 429 + Retry-After (default: unlimited)")
    p_sv.add_argument("--chaos", default=None, metavar="PLAN",
                      help="fault-injection self-test: service crash "
                           "sites hard-exit the server (see docs/"
                           "operations.md 'Running the analysis service')")
    p_sv.add_argument("--trace", default=None, metavar="FILE",
                      help="write a JSONL trace of http_request spans "
                           "and job execution")
    p_sv.set_defaults(func=_cmd_serve)

    p_wk = sub.add_parser(
        "worker",
        help="remote worker agent: pull jobs from a running service "
             "over the fenced claim protocol")
    p_wk.add_argument("--connect", required=True, metavar="URL",
                      help="coordinator base URL (http://host:port)")
    p_wk.add_argument("--workers", type=int, default=2,
                      help="concurrent claim slots in this agent")
    p_wk.add_argument("--name", default=None, metavar="ID",
                      help="fleet identity (default: <hostname>-<pid>)")
    p_wk.add_argument("--cache", default=None, metavar="DIR",
                      help="local result-cache directory (results still "
                           "ship to the coordinator's cache on settle)")
    p_wk.add_argument("--lease-seconds", type=float, default=60.0,
                      help="lease requested per claim; renewed by a "
                           "heartbeat thread while the job runs")
    p_wk.add_argument("--heartbeat-interval", type=float, default=None,
                      metavar="SECONDS",
                      help="lease renewal cadence (default: a third of "
                           "the lease)")
    p_wk.add_argument("--poll-interval", type=float, default=0.5,
                      metavar="SECONDS",
                      help="idle wait between empty claim polls")
    p_wk.add_argument("--drain-timeout", type=float, default=30.0,
                      help="seconds to let in-flight jobs settle on "
                           "SIGINT/SIGTERM before abandoning their "
                           "claims to the reaper")
    p_wk.add_argument("--timeout", type=float, default=30.0,
                      help="per-request HTTP timeout")
    p_wk.add_argument("--retries", type=int, default=3,
                      help="transient-failure retry budget per fleet "
                           "request")
    p_wk.add_argument("--no-isolate", action="store_true",
                      help="run jobs on slot threads instead of worker "
                           "processes")
    p_wk.add_argument("--chaos", default=None, metavar="PLAN",
                      help="fault-injection self-test (the distrib.* "
                           "sites drop fleet requests on the wire)")
    p_wk.set_defaults(func=_cmd_worker)

    p_cl = sub.add_parser("client",
                          help="talk to a running analysis service")
    p_cl.add_argument("action",
                      choices=["submit", "status", "result", "cancel",
                               "quarantine", "retry", "health"])
    p_cl.add_argument("--url", default=None,
                      help="service base URL (default: read "
                           "<workdir>/service.json)")
    p_cl.add_argument("--workdir", default=None,
                      help="locate the service via its state file")
    p_cl.add_argument("--client", default="cli", metavar="ID",
                      help="client identity for per-client admission caps")
    p_cl.add_argument("--spec", default=None,
                      help="sweep spec JSON to submit (file references "
                           "are embedded client-side)")
    p_cl.add_argument("--id", default=None, help="analysis id")
    p_cl.add_argument("--priority", type=int, default=0)
    p_cl.add_argument("--deadline", type=float, default=None,
                      metavar="SECONDS",
                      help="end-to-end deadline for the submission; "
                           "jobs still queued past it fail fast, "
                           "running jobs get their wall timeout clamped")
    p_cl.add_argument("--wait", action="store_true",
                      help="after submit, poll until finished and print "
                           "the results document")
    p_cl.add_argument("--timeout", type=float, default=30.0,
                      help="per-request HTTP timeout")
    p_cl.add_argument("--timeout-wait", type=float, default=600.0,
                      help="total --wait polling budget")
    p_cl.add_argument("--out", default=None,
                      help="write the fetched document here")
    p_cl.set_defaults(func=_cmd_client)

    p_ca = sub.add_parser("cache",
                          help="inspect or prune a result cache")
    p_ca.add_argument("action", choices=["stats", "prune"])
    p_ca.add_argument("--workdir", required=True,
                      help="a campaign/service workdir (containing "
                           "cache/) or a cache directory itself")
    p_ca.add_argument("--max-bytes", type=int, default=None,
                      help="prune oldest-first down to this many bytes")
    p_ca.add_argument("--ttl", type=float, default=None, metavar="SECONDS",
                      help="prune entries older than this")
    p_ca.set_defaults(func=_cmd_cache)

    from repro.bench.cli import add_bench_parser

    add_bench_parser(sub)
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
