"""Algorithm 1: scaling Raha through demand clustering (Section 6).

Jointly searching demands and failures on a large topology is slow.  The
clustering scheme approximates the worst demand matrix first, then finds
the worst failures for it:

1. partition the nodes into disjoint clusters;
2. go cluster-pair by cluster-pair: free only the demands whose source
   and destination fall in the current pair of clusters, fix all other
   demands to the values found so far (zero initially), and solve the
   joint problem *on the full topology* (all paths, all failures);
3. finally run the fixed-demand analysis with the assembled matrix.

"With this careful clustering we ensure we only approximate the demand:
when we analyze each cluster, we still consider all failure scenarios,
all paths (even those that exit the cluster), and all other demands that
we have set so far."
"""

from __future__ import annotations

import dataclasses
import time

from repro.core.config import RahaConfig
from repro.core.degradation import DegradationResult
from repro.exceptions import ModelingError
from repro.network.demand import DemandMatrix
from repro.network.topology import Topology
from repro.paths.pathset import PathSet


def cluster_nodes(topology: Topology, num_clusters: int,
                  seed: int = 0) -> list[set[str]]:
    """Partition nodes into disjoint clusters by recursive bisection.

    Uses Kernighan-Lin bisection (capacity-weighted) so cluster borders
    cut as little capacity as possible; the largest cluster is split
    until ``num_clusters`` parts exist.
    """
    import networkx as nx

    if num_clusters < 1:
        raise ModelingError(f"num_clusters must be positive, got {num_clusters}")
    if num_clusters > topology.num_nodes:
        raise ModelingError(
            f"cannot split {topology.num_nodes} nodes into {num_clusters} "
            "clusters"
        )
    graph = topology.to_networkx()
    clusters: list[set[str]] = [set(topology.nodes)]
    while len(clusters) < num_clusters:
        clusters.sort(key=len, reverse=True)
        largest = clusters.pop(0)
        if len(largest) < 2:
            clusters.append(largest)
            break
        sub = graph.subgraph(largest)
        left, right = nx.algorithms.community.kernighan_lin_bisection(
            sub, weight="capacity", seed=seed
        )
        clusters += [set(left), set(right)]
    return sorted(clusters, key=lambda c: sorted(c)[0])


def analyze_with_clustering(
    topology: Topology,
    paths: PathSet,
    config: RahaConfig,
    num_clusters: int,
    seed: int = 0,
) -> DegradationResult:
    """Run Algorithm 1 and return the final fixed-demand analysis.

    Requires the joint mode (``config.demand_bounds``); the total solver
    budget ``config.time_limit`` is divided across the per-cluster-pair
    solves plus the final solve, matching the paper's experiment where
    Gurobi's timeout ``t`` is split by the number of runs.

    Args:
        topology: The WAN.
        paths: Configured paths (full path set; clustering never restricts
            paths or failures).
        config: Joint-mode configuration.
        num_clusters: How many node clusters to form.
        seed: Clustering seed.
    """
    # Imported here: core.analyzer itself imports repro.metaopt.
    from repro.core.analyzer import RahaAnalyzer

    if config.demand_bounds is None:
        raise ModelingError("clustering requires the joint (demand_bounds) mode")
    started = time.monotonic()
    clusters = cluster_nodes(topology, num_clusters, seed=seed)
    bounds = dict(config.demand_bounds)
    pairs = list(bounds)

    # Which cluster-pair blocks actually contain demands?
    blocks = []
    for ci in clusters:
        for cj in clusters:
            block = [p for p in pairs if p[0] in ci and p[1] in cj]
            if block:
                blocks.append(block)
    num_solves = len(blocks) + 1
    share = (config.time_limit / num_solves
             if config.time_limit is not None else None)

    current = DemandMatrix({pair: 0.0 for pair in pairs})
    for block in blocks:
        block_set = set(block)
        mixed_bounds = {
            pair: (bounds[pair] if pair in block_set
                   else (current[pair], current[pair]))
            for pair in pairs
        }
        sub_config = dataclasses.replace(
            config, demand_bounds=mixed_bounds, fixed_demands=None,
            time_limit=share,
        )
        result = RahaAnalyzer(topology, paths, sub_config).analyze()
        for pair in block:
            current[pair] = result.demands[pair]

    final_config = dataclasses.replace(
        config, demand_bounds=None, fixed_demands=dict(current),
        time_limit=share,
    )
    final = RahaAnalyzer(topology, paths, final_config).analyze()
    final.notes.append(
        f"clustered demand approximation over {len(clusters)} clusters"
    )
    # Report the whole Algorithm-1 runtime, not just the last solve.
    final.solve_seconds = time.monotonic() - started
    return final
