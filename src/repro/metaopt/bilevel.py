"""Single-level reduction of the Stackelberg game (MetaOpt's mechanism).

The bi-level problem of Eq. 1:

.. code-block:: text

    max_I   H(I) - H'(I)          (outer / leader)
    s.t.    Constraints(I)
            H(I)  = max_f  Optimal(I, f)      (inner 1)
            H'(I) = max_f' Heuristic(I, f')   (inner 2)

reduces to a single MILP when the inner problems are LPs parameterized
linearly by the leader's variables:

* Inner 1 enters the outer objective with a **positive** sign; since the
  joint maximization already pushes its variables toward their optimum,
  embedding its primal is exact ("aligned").
* Inner 2 enters with a **negative** sign; the joint maximization would
  push its variables *below* their optimum, so it must be pinned with KKT
  optimality conditions ("adversarial").

The same classification works for minimizing inners with flipped signs
(MLU mode: the healthy network's min-U enters with ``-``, aligned; the
failed network's min-U enters with ``+``, adversarial).

:class:`StackelbergProblem` enforces this sign discipline, embeds KKT
conditions for every adversarial inner, solves, and verifies each
adversarial inner's embedded optimum against a fresh LP re-solve -- so a
too-small big-M bound surfaces as an error, never as a silently wrong
worst case.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ModelingError
from repro.obs.trace import current_tracer
from repro.solver.duality import InnerLP
from repro.solver.expr import LinExpr
from repro.solver.model import Model
from repro.solver.result import SolveResult


@dataclass
class _InnerTerm:
    inner: InnerLP
    coefficient: float
    adversarial: bool


@dataclass
class StackelbergProblem:
    """A bi-level optimization reduced to one MILP.

    Usage::

        game = StackelbergProblem("raha")
        d = game.model.add_var(ub=10, name="demand")      # leader variable
        optimal = game.aligned_inner("healthy", sense="max")
        heuristic = game.adversarial_inner("failed", sense="max")
        ... build both inner LPs referencing leader variables ...
        game.set_gap_objective(optimal, heuristic)
        result = game.solve(time_limit=60)
        game.verify(result)

    Attributes:
        name: Display name.
        model: The host :class:`repro.solver.model.Model`; leader
            variables and constraints are added to it directly.
    """

    name: str = "stackelberg"
    model: Model = field(default_factory=lambda: Model("stackelberg"))
    _terms: list[_InnerTerm] = field(default_factory=list)
    _extra_objective: LinExpr = field(default_factory=LinExpr)
    _finalized: bool = False

    def __post_init__(self):
        self.model.name = self.name

    # -- inner problem construction ---------------------------------------
    def aligned_inner(self, name: str, sense: str = "max") -> InnerLP:
        """Create an inner problem that will embed as a primal."""
        inner = InnerLP(self.model, name, sense=sense)
        self._terms.append(
            _InnerTerm(inner=inner, coefficient=0.0, adversarial=False)
        )
        return inner

    def adversarial_inner(self, name: str, sense: str = "max") -> InnerLP:
        """Create an inner problem that will be pinned by KKT conditions."""
        inner = InnerLP(self.model, name, sense=sense)
        self._terms.append(
            _InnerTerm(inner=inner, coefficient=0.0, adversarial=True)
        )
        return inner

    def _term_of(self, inner: InnerLP) -> _InnerTerm:
        for term in self._terms:
            if term.inner is inner:
                return term
        raise ModelingError(f"inner {inner.name!r} is not part of this game")

    # -- objective ----------------------------------------------------------
    def set_objective_terms(
        self, terms: list[tuple[InnerLP, float]], extra=0.0
    ) -> None:
        """Set the leader objective as a signed sum of inner objectives.

        The leader always *maximizes*.  Sign discipline is enforced:

        * a ``max`` inner with a positive coefficient (or a ``min`` inner
          with a negative one) must be aligned;
        * a ``max`` inner with a negative coefficient (or a ``min`` inner
          with a positive one) must be adversarial.

        Args:
            terms: ``(inner, coefficient)`` pairs.
            extra: Additional leader-variable expression added verbatim.
        """
        for inner, coef in terms:
            term = self._term_of(inner)
            if coef == 0.0:
                continue
            pushes_up = (coef > 0) == (inner.sense == "max")
            if pushes_up and term.adversarial:
                raise ModelingError(
                    f"inner {inner.name!r} is aligned with the leader; "
                    "declare it with aligned_inner() instead"
                )
            if not pushes_up and not term.adversarial:
                raise ModelingError(
                    f"inner {inner.name!r} opposes the leader; embedding its "
                    "primal alone would let the leader understate it -- "
                    "declare it with adversarial_inner()"
                )
            term.coefficient = float(coef)
        self._extra_objective = LinExpr._coerce(extra)

    def set_gap_objective(self, optimal: InnerLP, heuristic: InnerLP,
                          extra=0.0) -> None:
        """The canonical Raha objective: maximize ``Optimal - Heuristic``.

        For ``max`` inners (total flow) this is ``opt - heur``; for ``min``
        inners (MLU) the degradation is ``heur - opt`` and the signs flip
        accordingly.
        """
        if optimal.sense != heuristic.sense:
            raise ModelingError("both inner problems must share a sense")
        if optimal.sense == "max":
            self.set_objective_terms(
                [(optimal, 1.0), (heuristic, -1.0)], extra=extra
            )
        else:
            self.set_objective_terms(
                [(optimal, -1.0), (heuristic, 1.0)], extra=extra
            )

    # -- solve / verify -------------------------------------------------------
    def finalize(self) -> None:
        """Embed KKT conditions for adversarial inners and set the objective."""
        if self._finalized:
            return
        objective = self._extra_objective.copy()
        terms_out = objective.terms
        for term in self._terms:
            if term.adversarial:
                with current_tracer().span("embed_kkt", inner=term.inner.name):
                    term.inner.embed_kkt()
            if term.coefficient:
                contribution = term.inner.objective_expr()
                for idx, coef in contribution.terms.items():
                    new = terms_out.get(idx, 0.0) + term.coefficient * coef
                    if new == 0.0:
                        terms_out.pop(idx, None)
                    else:
                        terms_out[idx] = new
                objective.constant += term.coefficient * contribution.constant
        self.model.set_objective(objective, sense="max")
        self._finalized = True

    def solve(self, time_limit: float | None = None,
              mip_rel_gap: float | None = None,
              relax: bool = False) -> SolveResult:
        """Finalize (idempotent) and solve the single-level MILP.

        ``relax=True`` solves the LP relaxation instead -- a valid bound
        on the game's optimum, used by the analyzer's fallback ladder
        when the MILP times out without an incumbent.
        """
        self.finalize()
        return self.model.solve(time_limit=time_limit,
                                mip_rel_gap=mip_rel_gap, relax=relax)

    def verify(self, result: SolveResult, tol: float = 1e-4) -> dict[str, float]:
        """Re-solve every adversarial inner at the leader's choice.

        Returns:
            Mapping from inner name to its true optimum.

        Raises:
            VerificationError: When an embedded optimum deviates from the
                re-solved one (a big-M bound was too small).
        """
        truths = {}
        for term in self._terms:
            if term.adversarial:
                truths[term.inner.name] = term.inner.verify_optimality(
                    result, tol=tol
                )
        return truths
