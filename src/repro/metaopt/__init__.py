"""A MetaOpt-style heuristic analysis engine (Section 4.1).

MetaOpt [29, 30] frames heuristic analysis as a Stackelberg game: an
adversary (the *outer* problem) controls inputs to two *inner* problems --
an optimal algorithm and a heuristic -- and maximizes the performance gap
between them.  Raha instantiates this with the healthy network as the
"optimal" and the network under failure as the "heuristic".

:class:`repro.metaopt.bilevel.StackelbergProblem` performs the same
single-level reduction MetaOpt applies to LP inner problems:

* *aligned* inners (whose objective enters the outer objective with the
  sign the joint maximization already pushes toward) are embedded as
  primal variables and constraints;
* *adversarial* inners are additionally pinned to their own optimum via
  KKT conditions with big-M complementarity
  (:class:`repro.solver.duality.InnerLP`).

:mod:`repro.metaopt.clustering` implements Algorithm 1 -- the
demand-approximation scheme that lets Raha scale to large topologies.
"""

from repro.metaopt.bilevel import StackelbergProblem
from repro.metaopt.clustering import cluster_nodes

__all__ = ["StackelbergProblem", "cluster_nodes"]
