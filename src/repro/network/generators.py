"""Synthetic WAN generators.

The paper evaluates on a proprietary production WAN (~70 nodes, ~270
edges; 76 nodes / 334 LAGs / 382 links once production constraints are
modeled).  :func:`production_wan` builds a deterministic synthetic WAN
with the same *shape*: regional rings joined by inter-region LAGs, LAGs of
1-4 physical links, and a heavy-tailed link failure probability mix.

The probability mix deserves a note, because Figure 2 of the paper implies
its existence: for 15-25 links to be able to fail *simultaneously* with
probability above 1e-2, the product of their failure probabilities must
stay above the threshold -- which requires a population of links that are
down most of the time (long-term maintenance or dead links; Section 7
explicitly mentions "bring back into service links that are down for
maintenance").  :func:`sample_link_probability` therefore draws from a
three-component mixture: a small *dead* tail (down with probability
~0.97+), a tiny *flaky* tail (~0.2-0.38), and a solid majority (~3e-4).
With the default weights, the maximum number of simultaneously failing
links within probability threshold T falls from 27 (T = 1e-5) to 24
(T = 0.1) on the paper-scale WAN, reproducing the figure's envelope.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import TopologyError
from repro.network.topology import Topology


def sample_link_probability(
    rng: np.random.Generator,
    dead_share: float = 0.045,
    flaky_share: float = 0.006,
) -> float:
    """Draw one link failure probability from the production-like mixture.

    Args:
        rng: Seeded generator.
        dead_share: Fraction of links in maintenance/dead state.  The
            default reproduces Figure 2 on the paper-scale WAN; scaled-
            down benchmark instances raise it so the *density* of
            probable-failure LAGs per demand matches the production WAN
            (see DESIGN.md's scaling note).
        flaky_share: Fraction of intermittently failing links.
    """
    roll = rng.uniform()
    if roll < dead_share:
        # Dead/maintenance links: down almost always.  Scenarios above
        # any threshold *fail* these (keeping them up is the improbable
        # state), which is what lets double-digit failure counts stay
        # probable even at T = 0.1 (Figure 2) -- and their up-probability
        # is high enough (>= 0.96) that the most likely scenario itself
        # keeps probability above 0.1 on the paper-scale WAN.
        return float(rng.uniform(0.97, 0.995))
    if roll < dead_share + flaky_share:
        # Flaky links: failing one costs ~0.5-1.4 nats of log
        # probability, so the first threshold decades buy a few more
        # failures -- the gradual growth of Figure 5's infinity series.
        return float(rng.uniform(0.2, 0.38))
    # Solid links: lognormal around 3e-4, clipped into (0, 0.008]; failing
    # one costs ~8 nats, i.e. each further *pair* of threshold decades
    # lets the adversary fail one arbitrary (worst-case) link.
    value = float(np.exp(rng.normal(math.log(3e-4), 0.8)))
    return min(max(value, 1e-6), 0.008)


def production_wan(
    num_regions: int = 8,
    nodes_per_region: int = 9,
    intra_chord_fraction: float = 0.5,
    inter_region_lags: int = 3,
    link_capacity: float = 100.0,
    max_links_per_lag: int = 4,
    single_link_share: float = 0.85,
    target_lags: int | None = None,
    dead_share: float = 0.045,
    flaky_share: float = 0.006,
    seed: int = 0,
    name: str = "production-wan",
) -> Topology:
    """Build a production-shaped continental WAN.

    Structure: ``num_regions`` regional rings (metro areas), chords inside
    each ring, and several LAGs between geographically adjacent regions
    plus a few continent-spanning express LAGs.  LAG sizes (1 to
    ``max_links_per_lag`` links) and link probabilities are drawn
    deterministically from ``seed``.

    The defaults produce 72 nodes / ~300 LAGs-worth-of-links, matching the
    published scale of the paper's Africa WAN; benchmarks pass smaller
    values so the HiGHS-based pipeline finishes in CI time.

    Returns:
        A connected :class:`Topology` with full failure probabilities.
    """
    if num_regions < 1 or nodes_per_region < 2:
        raise TopologyError("need at least one region of two nodes")
    rng = np.random.default_rng(seed)
    topo = Topology(name=name)

    regions: list[list[str]] = []
    for r in range(num_regions):
        members = [f"r{r}n{i}" for i in range(nodes_per_region)]
        topo.add_nodes(members)
        regions.append(members)

    def add_random_lag(u: str, v: str) -> None:
        if topo.lag_between(u, v) is not None:
            return
        # Most LAGs are single-link by default (paper: 334 LAGs carry
        # 382 links); benchmarks lower single_link_share so that a single
        # link failure only shaves a LAG instead of killing it -- the
        # structural reason k <= 2 analysis under-reports (Section 2.2).
        if max_links_per_lag == 1 or rng.uniform() < single_link_share:
            n_links = 1
        else:
            n_links = int(rng.integers(2, max_links_per_lag + 1))
        caps = [link_capacity * float(rng.choice([0.4, 1.0, 1.0, 2.0]))
                for _ in range(n_links)]
        probs = [
            sample_link_probability(rng, dead_share=dead_share,
                                    flaky_share=flaky_share)
            for _ in range(n_links)
        ]
        topo.add_lag(u, v, link_capacities=caps, link_probabilities=probs)

    # Regional rings.
    for members in regions:
        for i, node in enumerate(members):
            add_random_lag(node, members[(i + 1) % len(members)])

    # Intra-region chords.
    for members in regions:
        n = len(members)
        num_chords = int(intra_chord_fraction * n)
        for _ in range(num_chords):
            i, j = rng.choice(n, size=2, replace=False)
            if abs(int(i) - int(j)) not in (0, 1, n - 1):
                add_random_lag(members[int(i)], members[int(j)])

    # Inter-region LAGs between ring-adjacent regions.
    for r in range(num_regions):
        nxt = (r + 1) % num_regions
        if nxt == r:
            continue
        for _ in range(inter_region_lags):
            u = regions[r][int(rng.integers(nodes_per_region))]
            v = regions[nxt][int(rng.integers(nodes_per_region))]
            add_random_lag(u, v)

    # A few express LAGs across the continent.
    if num_regions > 2:
        for _ in range(num_regions):
            r1, r2 = rng.choice(num_regions, size=2, replace=False)
            if abs(int(r1) - int(r2)) > 1:
                u = regions[int(r1)][int(rng.integers(nodes_per_region))]
                v = regions[int(r2)][int(rng.integers(nodes_per_region))]
                add_random_lag(u, v)

    # Densify with extra chords (mostly intra-region) until the LAG count
    # target is reached.  The default target reproduces the paper's scale:
    # 76 nodes / 334 LAGs once production constraints are modeled.
    if target_lags is None:
        target_lags = round(4.6 * num_regions * nodes_per_region)
    max_possible = topo.num_nodes * (topo.num_nodes - 1) // 2
    target_lags = min(target_lags, max_possible)
    attempts = 0
    while topo.num_lags < target_lags and attempts < 100 * target_lags:
        attempts += 1
        if rng.uniform() < 0.75 or num_regions == 1:
            members = regions[int(rng.integers(num_regions))]
            i, j = rng.choice(len(members), size=2, replace=False)
            u, v = members[int(i)], members[int(j)]
        else:
            r1, r2 = rng.choice(num_regions, size=2, replace=False)
            u = regions[int(r1)][int(rng.integers(nodes_per_region))]
            v = regions[int(r2)][int(rng.integers(nodes_per_region))]
        if u != v and topo.lag_between(u, v) is None:
            add_random_lag(u, v)

    if not topo.is_connected():
        # Rings plus inter-region LAGs always connect, but guard anyway.
        raise TopologyError("generated WAN is unexpectedly disconnected")
    return topo


def geographic_backbone(
    num_nodes: int,
    num_edges: int,
    seed: int = 0,
    capacity: float = 1000.0,
    num_links: int = 1,
    failure_probability: float | None = None,
    name: str = "backbone",
) -> Topology:
    """Build a backbone-shaped graph with an exact node and edge count.

    Nodes are placed uniformly at random in the unit square (seeded); a
    Euclidean minimum spanning tree guarantees connectivity, and the
    shortest remaining candidate edges (subject to a soft degree cap) are
    added until ``num_edges`` is reached.  This reproduces the sparse,
    low-degree, high-diameter character of Topology Zoo backbones and is
    used to stand in for Uninett2010 and Cogentco, whose raw GraphML we
    cannot ship.

    Args:
        num_nodes: Exact node count.
        num_edges: Exact LAG count (must be at least ``num_nodes - 1``).
        seed: Layout seed.
        capacity: Total capacity per LAG.
        num_links: Links per LAG (the paper uses single-link LAGs for zoo
            topologies since per-link data is unavailable).
        failure_probability: Per-link probability; ``None`` leaves the
            topology probability-free (callers may assign separately).
        name: Topology name.
    """
    if num_edges < num_nodes - 1:
        raise TopologyError("num_edges too small to connect the graph")
    max_edges = num_nodes * (num_nodes - 1) // 2
    if num_edges > max_edges:
        raise TopologyError(f"num_edges exceeds the {max_edges} possible pairs")

    rng = np.random.default_rng(seed)
    points = rng.uniform(size=(num_nodes, 2))
    names = [f"n{i}" for i in range(num_nodes)]
    topo = Topology(name=name)
    topo.add_nodes(names)

    # Euclidean MST via Prim's algorithm.
    dist = np.linalg.norm(points[:, None, :] - points[None, :, :], axis=2)
    in_tree = np.zeros(num_nodes, dtype=bool)
    best = np.full(num_nodes, np.inf)
    best_from = np.zeros(num_nodes, dtype=int)
    in_tree[0] = True
    best = dist[0].copy()
    best_from[:] = 0
    edges: list[tuple[int, int]] = []
    for _ in range(num_nodes - 1):
        candidates = np.where(~in_tree, best, np.inf)
        j = int(np.argmin(candidates))
        edges.append((int(best_from[j]), j))
        in_tree[j] = True
        update = dist[j] < best
        best_from[update & ~in_tree] = j
        best = np.where(update, dist[j], best)

    chosen = {tuple(sorted(e)) for e in edges}
    degree = np.zeros(num_nodes, dtype=int)
    for a, b in chosen:
        degree[a] += 1
        degree[b] += 1

    # Add the shortest remaining edges, avoiding hub formation.
    degree_cap = max(4, int(2.5 * num_edges / num_nodes))
    order = np.argsort(dist, axis=None)
    for flat in order:
        if len(chosen) >= num_edges:
            break
        a, b = divmod(int(flat), num_nodes)
        if a >= b:
            continue
        if (a, b) in chosen:
            continue
        if degree[a] >= degree_cap or degree[b] >= degree_cap:
            continue
        chosen.add((a, b))
        degree[a] += 1
        degree[b] += 1
    if len(chosen) < num_edges:
        # Degree cap was too tight for this layout; relax it.
        for flat in order:
            if len(chosen) >= num_edges:
                break
            a, b = divmod(int(flat), num_nodes)
            if a < b and (a, b) not in chosen:
                chosen.add((a, b))

    for a, b in sorted(chosen):
        topo.add_lag(
            names[a],
            names[b],
            capacity=capacity,
            num_links=num_links,
            failure_probability=failure_probability,
        )
    return topo


def assign_zoo_probabilities(
    topology: Topology,
    seed: int = 0,
    dead_share: float = 0.045,
    flaky_share: float = 0.006,
) -> Topology:
    """Assign production-mixture probabilities to a probability-free topology.

    The paper: "We do not have failure probabilities about the LAGs in the
    topology Zoo topologies.  We instead set these probabilities based on
    the data from our own production network."  This helper does the same
    against :func:`sample_link_probability`; the mixture shares can be
    raised for scaled-down experiments (see DESIGN.md's calibration note).

    Returns a new topology; the input is unchanged.
    """
    from repro.network.topology import Link

    rng = np.random.default_rng(seed)
    out = topology.copy()
    for lag in out.lags:
        lag.links = [
            Link(capacity=link.capacity,
                 failure_probability=sample_link_probability(
                     rng, dead_share=dead_share, flaky_share=flaky_share))
            for link in lag.links
        ]
    return out


def small_ring(num_nodes: int = 6, capacity: float = 10.0,
               failure_probability: float = 0.05, chords: int = 2,
               seed: int = 0, name: str = "ring") -> Topology:
    """A tiny ring-plus-chords topology for tests and examples."""
    rng = np.random.default_rng(seed)
    topo = Topology(name=name)
    names = [f"n{i}" for i in range(num_nodes)]
    topo.add_nodes(names)
    for i in range(num_nodes):
        topo.add_lag(names[i], names[(i + 1) % num_nodes], capacity=capacity,
                     failure_probability=failure_probability)
    added = 0
    while added < chords:
        i, j = rng.choice(num_nodes, size=2, replace=False)
        u, v = names[int(i)], names[int(j)]
        if topo.lag_between(u, v) is None:
            topo.add_lag(u, v, capacity=capacity,
                         failure_probability=failure_probability)
            added += 1
    return topo


def waxman(
    num_nodes: int = 30,
    alpha: float = 0.4,
    beta: float = 0.25,
    capacity: float = 100.0,
    failure_probability: float | None = None,
    seed: int = 0,
    name: str = "waxman",
) -> Topology:
    """A Waxman random geometric graph (the classic WAN null model).

    Nodes are placed uniformly in the unit square; an edge between u and
    v exists with probability ``alpha * exp(-d(u, v) / (beta * L))``
    where ``L`` is the maximum possible distance.  A spanning tree over
    the sampled layout guarantees connectivity.

    Args:
        num_nodes: Node count.
        alpha: Overall edge density.
        beta: Distance decay (larger favors long edges).
        capacity: Capacity per (single-link) LAG.
        failure_probability: Per-link probability, or ``None``.
        seed: Layout and sampling seed.
        name: Topology name.
    """
    if num_nodes < 2:
        raise TopologyError("a Waxman graph needs at least two nodes")
    if not (0 < alpha <= 1) or beta <= 0:
        raise TopologyError(f"bad Waxman parameters alpha={alpha} beta={beta}")
    rng = np.random.default_rng(seed)
    points = rng.uniform(size=(num_nodes, 2))
    names = [f"w{i}" for i in range(num_nodes)]
    topo = Topology(name=name)
    topo.add_nodes(names)

    scale = math.sqrt(2.0)  # max distance in the unit square
    for i in range(num_nodes):
        for j in range(i + 1, num_nodes):
            distance = float(np.linalg.norm(points[i] - points[j]))
            if rng.uniform() < alpha * math.exp(-distance / (beta * scale)):
                topo.add_lag(names[i], names[j], capacity=capacity,
                             failure_probability=failure_probability)

    # Connect any leftover components along nearest pairs.
    while not topo.is_connected():
        seen = {names[0]}
        frontier = [names[0]]
        while frontier:
            node = frontier.pop()
            for nxt in topo.neighbors(node):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        outside = [n for n in names if n not in seen]
        best = None
        for u in seen:
            iu = names.index(u)
            for v in outside:
                iv = names.index(v)
                d = float(np.linalg.norm(points[iu] - points[iv]))
                if best is None or d < best[0]:
                    best = (d, u, v)
        topo.add_lag(best[1], best[2], capacity=capacity,
                     failure_probability=failure_probability)
    return topo
