"""Gateway "equivalence" virtual nodes (Section 9).

Traffic entering or leaving a continent can use any of several gateways
(multi-source / multi-destination demands).  The paper models this with a
virtual node attached to the gateways: the virtual node "has more paths
available to it -- we allow them access to all paths that their immediate
neighbors have access to", and CE constraints apply only to non-virtual
nodes.

:func:`add_gateway` performs the topology transformation;
:func:`extend_paths_through_gateways` grows a :class:`PathSet` so a
virtual endpoint inherits its gateways' paths.
"""

from __future__ import annotations

from collections.abc import Mapping

from repro.exceptions import TopologyError
from repro.network.topology import Topology
from repro.paths.pathset import DemandPaths, PathSet


def add_gateway(
    topology: Topology,
    virtual_name: str,
    gateway_capacities: Mapping[str, float],
) -> Topology:
    """Return a copy with a virtual node LAG-attached to each gateway.

    Args:
        topology: The WAN.
        virtual_name: Name of the new virtual node.
        gateway_capacities: Gateway node -> transit capacity ("each of
            these gateways has a capacity for how much traffic it can help
            transit").  The virtual LAG to a gateway carries exactly that
            capacity and, being virtual, never fails on its own.

    Returns:
        A new topology; the input is unchanged.
    """
    if not gateway_capacities:
        raise TopologyError("a gateway equivalence needs at least one gateway")
    if topology.has_node(virtual_name):
        raise TopologyError(f"node {virtual_name!r} already exists")
    out = topology.copy()
    out.add_node(virtual_name)
    for gateway, capacity in gateway_capacities.items():
        if not out.has_node(gateway):
            raise TopologyError(f"unknown gateway {gateway!r}")
        # Virtual LAGs do not fail: no failure probability means the
        # failure model treats them as always-up unless told otherwise.
        out.add_lag(virtual_name, gateway, capacity=capacity, num_links=1)
    return out


def extend_paths_through_gateways(
    paths: PathSet,
    topology: Topology,
    virtual_name: str,
    gateways: list[str],
) -> PathSet:
    """Give demands touching the virtual node all gateway paths.

    For a demand ``(virtual, d)`` the result contains, for every gateway
    ``g`` and every path ``g -> d`` that some demand ``(g, d)`` owns, the
    path ``virtual -> g -> d`` (and symmetrically for ``(s, virtual)``).
    Primary/backup ordering is preserved gateway-major: all primaries of
    every gateway first, then all backups.

    Args:
        paths: Path set containing the gateway demands' paths.
        topology: Topology *with* the virtual node attached.
        virtual_name: The virtual endpoint.
        gateways: Gateways in preference order.

    Returns:
        A new :class:`PathSet` with entries for the virtual demands added.
    """
    out = PathSet(dict(paths))
    out.computation_seconds = paths.computation_seconds
    virtual_pairs: dict = {}

    for pair in list(paths):
        src, dst = pair
        for gateway in gateways:
            if src == gateway and dst != virtual_name:
                virtual_pairs.setdefault((virtual_name, dst), [])
            if dst == gateway and src != virtual_name:
                virtual_pairs.setdefault((src, virtual_name), [])

    for vpair in virtual_pairs:
        vsrc, vdst = vpair
        primaries, backups = [], []
        for gateway in gateways:
            base_pair = (gateway, vdst) if vsrc == virtual_name else (vsrc, gateway)
            base = paths.get(base_pair)
            if base is None:
                continue
            for i, path in enumerate(base.paths):
                if vsrc == virtual_name:
                    extended = (virtual_name,) + path
                else:
                    extended = path + (virtual_name,)
                if not topology.path_is_valid(extended):
                    continue
                (primaries if i < base.num_primary else backups).append(extended)
        # De-duplicate while keeping order.
        ordered = list(dict.fromkeys(primaries + backups))
        n_primary = len(dict.fromkeys(primaries))
        if not ordered:
            continue
        out[vpair] = DemandPaths(
            pair=vpair, paths=ordered, num_primary=max(1, n_primary)
        )
    return out
