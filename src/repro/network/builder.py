"""Convenience constructors for topologies.

These helpers keep tests and examples terse: most callers know their
edge list and a capacity scheme and do not want to call ``add_node`` /
``add_lag`` by hand.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence

from repro.network.topology import Topology


def from_edges(
    edges: Iterable[Sequence],
    default_capacity: float = 10.0,
    default_num_links: int = 1,
    failure_probability: float | None = None,
    name: str = "topology",
) -> Topology:
    """Build a topology from an edge list.

    Each edge is ``(u, v)``, ``(u, v, capacity)``, or
    ``(u, v, capacity, num_links)``.  Nodes are created on first mention
    in edge order.

    Example:
        >>> topo = from_edges([("a", "b", 10), ("b", "c")], default_capacity=5)
        >>> topo.require_lag("b", "c").capacity
        5.0
    """
    topo = Topology(name=name)
    for edge in edges:
        u, v = edge[0], edge[1]
        capacity = float(edge[2]) if len(edge) > 2 else default_capacity
        num_links = int(edge[3]) if len(edge) > 3 else default_num_links
        for node in (u, v):
            if not topo.has_node(node):
                topo.add_node(node)
        topo.add_lag(
            u, v, capacity=capacity, num_links=num_links,
            failure_probability=failure_probability,
        )
    return topo


def with_link_probabilities(
    topology: Topology, probabilities: Mapping[tuple[str, str], float]
) -> Topology:
    """Return a copy with the given per-LAG probabilities applied.

    Every link of a named LAG receives the same probability; LAGs not
    mentioned keep their current value.
    """
    from repro.network.topology import Link, lag_key

    wanted = {lag_key(u, v): p for (u, v), p in probabilities.items()}
    out = topology.copy()
    for lag in out.lags:
        if lag.key in wanted:
            p = wanted[lag.key]
            lag.links = [
                Link(capacity=link.capacity, failure_probability=p)
                for link in lag.links
            ]
    return out


def line(num_nodes: int, capacity: float = 10.0,
         failure_probability: float | None = None,
         name: str = "line") -> Topology:
    """A path graph ``n0 - n1 - ... - n{k-1}`` (useful in unit tests)."""
    edges = [(f"n{i}", f"n{i+1}") for i in range(num_nodes - 1)]
    return from_edges(edges, default_capacity=capacity,
                      failure_probability=failure_probability, name=name)


def motivating_example() -> Topology:
    """The paper's Figure 1 network: nodes A-D with five LAGs.

    Demands: B->D and C->D, each with a direct path and a path through A
    (both primary).  The exact capacities are not printed in the paper;
    these are calibrated so that with "typical" demands (B->D 12, C->D 10,
    each allowed to vary by 50%) the fixed-demand scenario reproduces the
    published numbers exactly: the healthy network routes all 22 units,
    the worst single failure (the B-D LAG) leaves only 15, a degradation
    of 7.  The naive adversary (minimize failed performance) finds almost
    nothing (0 vs the paper's 1), while Raha's joint gap search finds a
    degradation of 10 (paper: 9) -- the orderings and magnitudes of
    Figure 1 are preserved even though the unpublished capacities differ.

    See ``tests/core/test_motivating_example.py`` for the full check.
    """
    return from_edges(
        [
            ("B", "D", 10.0),
            ("C", "D", 6.0),
            ("A", "D", 9.0),
            ("A", "B", 12.0),
            ("A", "C", 12.0),
        ],
        failure_probability=0.01,
        name="figure-1",
    )
