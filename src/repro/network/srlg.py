"""Shared risk link groups (SRLGs).

The paper notes Raha "can model partial failures ... and shared risk
groups (SRLGs)".  An SRLG names a set of physical links that fail together
(e.g. fibers in the same conduit cut by the same seismic event).  In the
MILP encoding (:mod:`repro.failures.model`) every link of an SRLG shares
one failure binary.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import TopologyError
from repro.network.topology import LagKey, Topology, lag_key


@dataclass
class Srlg:
    """A shared risk link group.

    Attributes:
        name: Identifier for reports.
        members: ``(lag_key, link_index)`` pairs that share fate.
        failure_probability: Probability the whole group fails together.
            When set, it overrides the individual links' probabilities in
            the probability-threshold constraint (the group is one event).
    """

    name: str
    members: list[tuple[LagKey, int]] = field(default_factory=list)
    failure_probability: float | None = None

    def add(self, u: str, v: str, link_index: int) -> None:
        """Add link ``link_index`` of the LAG between ``u`` and ``v``."""
        self.members.append((lag_key(u, v), link_index))

    def validate(self, topology: Topology) -> None:
        """Check every member exists in the given topology."""
        if len(self.members) < 2:
            raise TopologyError(f"SRLG {self.name!r} needs at least two members")
        seen = set()
        for key, link_index in self.members:
            lag = topology.lag_between(*key)
            if lag is None:
                raise TopologyError(f"SRLG {self.name!r}: no LAG {key}")
            if not (0 <= link_index < lag.num_links):
                raise TopologyError(
                    f"SRLG {self.name!r}: LAG {key} has no link {link_index}"
                )
            member = (key, link_index)
            if member in seen:
                raise TopologyError(
                    f"SRLG {self.name!r}: duplicate member {member}"
                )
            seen.add(member)
        p = self.failure_probability
        if p is not None and not (0.0 < p < 1.0):
            raise TopologyError(
                f"SRLG {self.name!r}: probability must be in (0, 1), got {p}"
            )


def attach_srlg(topology: Topology, srlg: Srlg) -> None:
    """Validate an SRLG against a topology and register it."""
    srlg.validate(topology)
    topology.srlgs.append(srlg)
