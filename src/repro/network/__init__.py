"""Network substrate: topologies, LAGs, links, demands, and sources.

The paper models a WAN as a graph whose edges are *LAGs* (link aggregation
groups), each a bundle of physical links with individual capacities and
failure probabilities.  A LAG only goes down when all of its links go down
(Eq. 3); partial failures remove a fraction of its capacity.

Modules:

* :mod:`repro.network.topology` -- the core :class:`Topology` data model.
* :mod:`repro.network.builder` -- fluent construction helpers.
* :mod:`repro.network.demand` -- demand matrices, gravity model, envelopes.
* :mod:`repro.network.generators` -- synthetic WANs (production-like, ring
  and chord, Waxman random geometric).
* :mod:`repro.network.zoo` -- embedded Topology-Zoo-shaped topologies
  (B4, Uninett2010-like, Cogentco-like).
* :mod:`repro.network.graphml` -- GraphML reader for real Topology Zoo files.
* :mod:`repro.network.srlg` -- shared risk link groups.
* :mod:`repro.network.virtual` -- gateway "equivalence" virtual nodes (§9).
"""

from repro.network.demand import (
    DemandMatrix,
    demand_envelope,
    gravity_demands,
    synthesize_monthly_demands,
)
from repro.network.srlg import Srlg
from repro.network.topology import Lag, Link, Topology

__all__ = [
    "DemandMatrix",
    "Lag",
    "Link",
    "Srlg",
    "Topology",
    "demand_envelope",
    "gravity_demands",
    "synthesize_monthly_demands",
]
