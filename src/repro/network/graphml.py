"""GraphML reader for Topology Zoo files.

The Internet Topology Zoo distributes WANs as GraphML.  This reader uses
only the standard library (``xml.etree``) so that real zoo files can be
loaded even without networkx, and maps the zoo's conventions onto our
model:

* nodes keep their ``label`` attribute when present, else their id;
* parallel edges between the same pair become multiple *links* of one LAG
  (the natural reading of a LAG as a bundle);
* the ``LinkSpeedRaw`` attribute (bits/s) is converted to Gbps and used
  as link capacity when present, else ``default_capacity`` applies.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from collections import defaultdict

from repro.exceptions import TopologyError
from repro.network.topology import Link, Topology, lag_key

_NS = "{http://graphml.graphdrawing.org/xmlns}"


def read_graphml(
    path: str,
    default_capacity: float = 1000.0,
    failure_probability: float | None = None,
    name: str | None = None,
) -> Topology:
    """Parse a GraphML file into a :class:`Topology`.

    Args:
        path: File path of the GraphML document.
        default_capacity: Capacity for links without ``LinkSpeedRaw``.
        failure_probability: Probability assigned to every link (zoo files
            carry none); leave ``None`` and use
            :func:`repro.network.generators.assign_zoo_probabilities` to
            apply the production mixture instead.
        name: Topology name; defaults to the file's graph id or path.

    Raises:
        TopologyError: On malformed documents (no graph, dangling edges).
    """
    try:
        tree = ET.parse(path)
    except ET.ParseError as exc:
        raise TopologyError(f"invalid GraphML in {path!r}: {exc}") from exc
    root = tree.getroot()
    graph = root.find(f"{_NS}graph")
    if graph is None:
        raise TopologyError(f"{path!r} contains no <graph> element")

    # Map <key> ids to attribute names so we can find label / LinkSpeedRaw.
    key_names = {
        key.get("id"): key.get("attr.name", "")
        for key in root.findall(f"{_NS}key")
    }

    def data_of(element) -> dict[str, str]:
        values = {}
        for data in element.findall(f"{_NS}data"):
            attr = key_names.get(data.get("key"), data.get("key"))
            values[attr] = (data.text or "").strip()
        return values

    topo = Topology(name=name or graph.get("id") or path)
    id_to_name: dict[str, str] = {}
    used_names: set[str] = set()
    for node in graph.findall(f"{_NS}node"):
        node_id = node.get("id")
        if node_id is None:
            raise TopologyError(f"{path!r}: node without id")
        label = data_of(node).get("label") or node_id
        # Zoo labels are not unique; disambiguate with the id.
        chosen = label if label not in used_names else f"{label}#{node_id}"
        used_names.add(chosen)
        id_to_name[node_id] = chosen
        topo.add_node(chosen)

    # Accumulate parallel edges into per-pair link bundles.
    bundles: dict[tuple[str, str], list[Link]] = defaultdict(list)
    for edge in graph.findall(f"{_NS}edge"):
        src, dst = edge.get("source"), edge.get("target")
        if src not in id_to_name or dst not in id_to_name:
            raise TopologyError(f"{path!r}: edge references unknown node")
        u, v = id_to_name[src], id_to_name[dst]
        if u == v:
            continue  # zoo files occasionally carry self-loops; skip them
        values = data_of(edge)
        capacity = default_capacity
        raw = values.get("LinkSpeedRaw")
        if raw:
            try:
                capacity = float(raw) / 1e9  # bits/s -> Gbps
            except ValueError:
                pass
        bundles[lag_key(u, v)].append(
            Link(capacity=capacity, failure_probability=failure_probability)
        )

    for (u, v), links in sorted(bundles.items()):
        lag = topo.add_lag(u, v, link_capacities=[l.capacity for l in links])
        lag.links = links
    return topo
