"""Topology-Zoo-shaped topologies used by the paper's evaluation.

The paper evaluates on B4 (via TEAVAR), Uninett2010 (74 nodes, 202
directed edges), and Cogentco (197 nodes, 486 directed edges).  The raw
GraphML files cannot be shipped offline, so:

* :func:`b4` embeds the 12-node / 19-edge B4 WAN of Jain et al. (SIGCOMM
  2013), the same topology the TEAVAR artifact distributes.  Edge
  capacities follow the paper's normalization (average LAG capacity 5000,
  Table 3).
* :func:`uninett2010_like` and :func:`cogentco_like` synthesize graphs
  with the exact published node/edge counts through
  :func:`repro.network.generators.geographic_backbone` (paper edge counts
  are directed; we create half as many undirected LAGs).

Users with real Topology Zoo files can load them with
:func:`repro.network.graphml.read_graphml` instead; every algorithm in
this repository is topology-agnostic.
"""

from __future__ import annotations

from repro.network.generators import assign_zoo_probabilities, geographic_backbone
from repro.network.topology import Topology

#: The B4 inter-datacenter WAN (Jain et al., SIGCOMM 2013): 12 sites, 19
#: bidirectional edges.  Site numbering follows the original figure's
#: left-to-right order (1-2 US west, 3-5 US central/east, 6-8 Europe,
#: 9-12 Asia); the edge list reproduces its connectivity.
B4_EDGES: list[tuple[str, str]] = [
    ("s1", "s2"), ("s1", "s3"), ("s2", "s3"), ("s2", "s4"), ("s3", "s4"),
    ("s3", "s5"), ("s4", "s5"), ("s4", "s6"), ("s5", "s7"), ("s6", "s7"),
    ("s6", "s8"), ("s7", "s8"), ("s7", "s9"), ("s8", "s10"), ("s9", "s10"),
    ("s9", "s11"), ("s10", "s12"), ("s11", "s12"), ("s5", "s12"),
]


#: The Abilene research backbone (11 PoPs, 14 OC-192 links) -- the other
#: classic public WAN used throughout the TE literature.
ABILENE_EDGES: list[tuple[str, str]] = [
    ("seattle", "sunnyvale"), ("seattle", "denver"),
    ("sunnyvale", "losangeles"), ("sunnyvale", "denver"),
    ("losangeles", "houston"), ("denver", "kansascity"),
    ("kansascity", "houston"), ("kansascity", "indianapolis"),
    ("houston", "atlanta"), ("indianapolis", "chicago"),
    ("indianapolis", "atlanta"), ("chicago", "newyork"),
    ("atlanta", "washington"), ("newyork", "washington"),
]


def abilene(capacity: float = 10.0, with_probabilities: bool = True,
            seed: int = 0) -> Topology:
    """The Abilene backbone: 11 nodes, 14 single-link LAGs.

    Args:
        capacity: Capacity per LAG (the real links were OC-192,
            ~10 Gbps, hence the default).
        with_probabilities: Assign production-mixture probabilities.
        seed: Probability assignment seed.
    """
    topo = Topology(name="Abilene")
    nodes = sorted({n for edge in ABILENE_EDGES for n in edge})
    topo.add_nodes(nodes)
    for u, v in ABILENE_EDGES:
        topo.add_lag(u, v, capacity=capacity, num_links=1)
    if with_probabilities:
        topo = assign_zoo_probabilities(topo, seed=seed)
        topo.name = "Abilene"
    return topo


def b4(capacity: float = 5000.0, with_probabilities: bool = True,
       seed: int = 0) -> Topology:
    """The B4 WAN: 12 nodes, 19 single-link LAGs.

    Args:
        capacity: Capacity per LAG; the default gives the paper's Table 3
            normalization (average LAG capacity = 5000).
        with_probabilities: Assign production-mixture link probabilities
            (the paper: "assigned the link failure probabilities randomly
            and based on values from our production network").
        seed: Probability assignment seed.
    """
    topo = Topology(name="B4")
    nodes = sorted({n for edge in B4_EDGES for n in edge},
                   key=lambda s: int(s[1:]))
    topo.add_nodes(nodes)
    for u, v in B4_EDGES:
        topo.add_lag(u, v, capacity=capacity, num_links=1)
    if with_probabilities:
        topo = assign_zoo_probabilities(topo, seed=seed)
        topo.name = "B4"
    return topo


def uninett2010_like(capacity: float = 1000.0, with_probabilities: bool = True,
                     seed: int = 0) -> Topology:
    """A Uninett2010-shaped backbone: 74 nodes, 101 LAGs (202 directed).

    The paper's Figure 8 normalizes degradation by an average LAG
    capacity of 1000, which the default ``capacity`` matches.
    """
    topo = geographic_backbone(
        num_nodes=74, num_edges=101, seed=101 + seed, capacity=capacity,
        name="Uninett2010-like",
    )
    if with_probabilities:
        topo = assign_zoo_probabilities(topo, seed=seed)
        topo.name = "Uninett2010-like"
    return topo


def cogentco_like(capacity: float = 1000.0, with_probabilities: bool = True,
                  seed: int = 0) -> Topology:
    """A Cogentco-shaped backbone: 197 nodes, 243 LAGs (486 directed).

    Table 4 normalizes by an average LAG capacity of 1000, which the
    default ``capacity`` matches.
    """
    topo = geographic_backbone(
        num_nodes=197, num_edges=243, seed=197 + seed, capacity=capacity,
        name="Cogentco-like",
    )
    if with_probabilities:
        topo = assign_zoo_probabilities(topo, seed=seed)
        topo.name = "Cogentco-like"
    return topo
