"""JSON serialization of topologies, scenarios, paths, and results.

Raha runs operationally (online alerts after every failure, offline
provisioning), which means inputs and findings must round-trip through
files: topology snapshots from inventory systems, the scenario/demand
pair behind an alert, augment plans for review.  This module defines a
stable, versioned JSON schema for each.
"""

from __future__ import annotations

import json
from collections.abc import Mapping

from repro.core.degradation import DegradationResult
from repro.exceptions import TopologyError
from repro.failures.scenario import FailureScenario
from repro.network.demand import DemandMatrix
from repro.network.srlg import Srlg
from repro.network.topology import Link, Topology
from repro.paths.pathset import DemandPaths, PathSet

#: Schema version written into every document.
SCHEMA_VERSION = 1


def topology_to_dict(topology: Topology) -> dict:
    """Serialize a topology (nodes, LAGs, links, SRLGs)."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "topology",
        "name": topology.name,
        "nodes": list(topology.nodes),
        "lags": [
            {
                "u": lag.u,
                "v": lag.v,
                "links": [
                    {
                        "capacity": link.capacity,
                        "failure_probability": link.failure_probability,
                        "can_fail": link.can_fail,
                    }
                    for link in lag.links
                ],
            }
            for lag in topology.lags
        ],
        "srlgs": [
            {
                "name": srlg.name,
                "members": [
                    {"u": key[0], "v": key[1], "link": idx}
                    for key, idx in srlg.members
                ],
                "failure_probability": srlg.failure_probability,
            }
            for srlg in topology.srlgs
        ],
    }


def topology_from_dict(data: Mapping) -> Topology:
    """Deserialize a topology; validates structure as it builds."""
    if data.get("kind") != "topology":
        raise TopologyError(f"expected a topology document, got {data.get('kind')!r}")
    topology = Topology(name=data.get("name", "topology"))
    topology.add_nodes(data["nodes"])
    for lag_data in data["lags"]:
        links = [
            Link(
                capacity=link["capacity"],
                failure_probability=link.get("failure_probability"),
                can_fail=link.get("can_fail", True),
            )
            for link in lag_data["links"]
        ]
        lag = topology.add_lag(
            lag_data["u"], lag_data["v"],
            link_capacities=[l.capacity for l in links],
        )
        lag.links = links
    for srlg_data in data.get("srlgs", []):
        srlg = Srlg(
            name=srlg_data["name"],
            members=[
                ((m["u"], m["v"]), m["link"]) for m in srlg_data["members"]
            ],
            failure_probability=srlg_data.get("failure_probability"),
        )
        srlg.validate(topology)
        topology.srlgs.append(srlg)
    return topology


def scenario_to_dict(scenario: FailureScenario) -> dict:
    """Serialize a failure scenario."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "scenario",
        "failed_links": [
            {"u": key[0], "v": key[1], "link": idx}
            for key, idx in sorted(scenario.failed_links)
        ],
    }


def scenario_from_dict(data: Mapping) -> FailureScenario:
    """Deserialize a failure scenario."""
    return FailureScenario(
        ((item["u"], item["v"]), item["link"])
        for item in data["failed_links"]
    )


def demands_to_dict(demands: Mapping) -> dict:
    """Serialize a demand matrix."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "demands",
        "entries": [
            {"src": src, "dst": dst, "volume": volume}
            for (src, dst), volume in demands.items()
        ],
    }


def demands_from_dict(data: Mapping) -> DemandMatrix:
    """Deserialize a demand matrix."""
    return DemandMatrix({
        (e["src"], e["dst"]): float(e["volume"]) for e in data["entries"]
    })


def paths_to_dict(paths: PathSet) -> dict:
    """Serialize a path set with its primary/backup ordering."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "paths",
        "demands": [
            {
                "src": pair[0],
                "dst": pair[1],
                "num_primary": dp.num_primary,
                "paths": [list(path) for path in dp.paths],
            }
            for pair, dp in paths.items()
        ],
    }


def paths_from_dict(data: Mapping) -> PathSet:
    """Deserialize a path set."""
    out = PathSet()
    for entry in data["demands"]:
        pair = (entry["src"], entry["dst"])
        out[pair] = DemandPaths(
            pair=pair,
            paths=[tuple(p) for p in entry["paths"]],
            num_primary=entry["num_primary"],
        )
    return out


def result_to_dict(result: DegradationResult) -> dict:
    """Serialize an analysis result (for alert payloads and archives)."""
    return {
        "schema": SCHEMA_VERSION,
        "kind": "degradation_result",
        "degradation": result.degradation,
        "normalized_degradation": result.normalized_degradation,
        "healthy_value": result.healthy_value,
        "failed_value": result.failed_value,
        "scenario": scenario_to_dict(result.scenario),
        "demands": demands_to_dict(result.demands),
        "scenario_probability": result.scenario_probability,
        "status": result.status,
        "verified": result.verified,
        "solve_seconds": result.solve_seconds,
        "solver_stats": result.solver_stats,
        "notes": list(result.notes),
    }


def save_json(obj: Mapping, path: str) -> None:
    """Write a serialized document to disk."""
    with open(path, "w") as handle:
        json.dump(obj, handle, indent=2, sort_keys=True)


def load_json(path: str) -> dict:
    """Read a serialized document from disk."""
    with open(path) as handle:
        return json.load(handle)
