"""The core topology data model: nodes, links, LAGs.

Terminology follows the paper (Table 2):

* A **link** is a single physical cable with its own capacity ``c_le`` and
  failure probability ``pi_le``.
* A **LAG** (link aggregation group) is the bundle of parallel links that
  forms one edge of the WAN graph.  Its healthy capacity is the sum of its
  links' capacities; it is *down* only when every constituent link is down
  (Eq. 3), but each failed link removes its share of capacity (partial
  failures).

LAGs are undirected: the WANs in the paper run bidirectional LAGs and a
LAG's capacity is shared by traffic in both directions.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.exceptions import TopologyError

#: Canonical dictionary key for a LAG between two nodes.
LagKey = tuple[str, str]


def lag_key(u: str, v: str) -> LagKey:
    """Normalize an unordered node pair into a canonical LAG key."""
    return (u, v) if u <= v else (v, u)


@dataclass(frozen=True)
class Link:
    """One physical link inside a LAG.

    Attributes:
        capacity: Capacity of this single cable (same unit as demands).
        failure_probability: Steady-state probability the link is down
            (estimated in production with renewal-reward theory, see
            Appendix B and :mod:`repro.failures.probability`).  ``None``
            means unknown; analyses that need probabilities will then fall
            back to ``<= k`` failure analysis, as the paper specifies.
        can_fail: Whether the failure search may bring the link down.
            Virtual gateway LAGs and "assumed reliable" capacity augments
            (the Figure 17/18 experiments) set this to ``False``.
    """

    capacity: float
    failure_probability: float | None = None
    can_fail: bool = True

    def __post_init__(self):
        if self.capacity < 0:
            raise TopologyError(f"link capacity must be nonnegative: {self.capacity}")
        p = self.failure_probability
        if p is not None and not (0.0 < p < 1.0):
            raise TopologyError(
                f"link failure probability must lie strictly in (0, 1): {p}"
            )


@dataclass
class Lag:
    """A LAG: one WAN edge made of parallel physical links.

    Attributes:
        u: First endpoint (canonical order, ``u <= v``).
        v: Second endpoint.
        links: The physical links in the bundle (at least one).
        index: Position of this LAG in the owning topology's LAG order;
            assigned by :meth:`Topology.add_lag`.
    """

    u: str
    v: str
    links: list[Link]
    index: int = -1

    @property
    def key(self) -> LagKey:
        """Canonical ``(u, v)`` key of this LAG."""
        return (self.u, self.v)

    @property
    def capacity(self) -> float:
        """Healthy capacity: the sum over constituent links."""
        return sum(link.capacity for link in self.links)

    @property
    def num_links(self) -> int:
        """Number of physical links in the bundle (``N_e`` in the paper)."""
        return len(self.links)

    @property
    def has_probabilities(self) -> bool:
        """Whether every link carries a failure probability."""
        return all(link.failure_probability is not None for link in self.links)

    def endpoints(self) -> tuple[str, str]:
        """The two endpoints in canonical order."""
        return (self.u, self.v)

    def other(self, node: str) -> str:
        """The endpoint opposite ``node``."""
        if node == self.u:
            return self.v
        if node == self.v:
            return self.u
        raise TopologyError(f"{node!r} is not an endpoint of LAG {self.key}")

    def __repr__(self):
        return f"Lag({self.u}-{self.v}, {self.num_links} links, cap={self.capacity:g})"


@dataclass
class Topology:
    """An undirected WAN topology of nodes and LAGs.

    Build with :meth:`add_node` / :meth:`add_lag`, or use the helpers in
    :mod:`repro.network.builder`, :mod:`repro.network.generators` and
    :mod:`repro.network.zoo`.

    Attributes:
        name: Display name used in reports.
    """

    name: str = "topology"
    _nodes: list[str] = field(default_factory=list)
    _node_set: set[str] = field(default_factory=set)
    _lags: list[Lag] = field(default_factory=list)
    _lag_by_key: dict[LagKey, Lag] = field(default_factory=dict)
    _adjacency: dict[str, list[Lag]] = field(default_factory=dict)
    srlgs: list = field(default_factory=list)

    # -- construction -----------------------------------------------------
    def add_node(self, name: str) -> str:
        """Register a node; adding an existing node is an error."""
        if not name:
            raise TopologyError("node names must be non-empty strings")
        if name in self._node_set:
            raise TopologyError(f"duplicate node {name!r}")
        self._nodes.append(name)
        self._node_set.add(name)
        self._adjacency[name] = []
        return name

    def add_nodes(self, names: Iterable[str]) -> None:
        """Register several nodes."""
        for name in names:
            self.add_node(name)

    def add_lag(
        self,
        u: str,
        v: str,
        link_capacities: Sequence[float] | None = None,
        link_probabilities: Sequence[float] | None = None,
        capacity: float | None = None,
        num_links: int = 1,
        failure_probability: float | None = None,
    ) -> Lag:
        """Add a LAG between two existing nodes.

        Either pass explicit per-link data (``link_capacities`` and
        optionally ``link_probabilities``), or pass an aggregate
        ``capacity`` that is split evenly across ``num_links`` links, each
        with the same ``failure_probability``.

        Returns:
            The created :class:`Lag` with its index assigned.
        """
        for node in (u, v):
            if node not in self._node_set:
                raise TopologyError(f"unknown node {node!r}; add_node it first")
        if u == v:
            raise TopologyError(f"self-loop LAG at {u!r} is not allowed")
        key = lag_key(u, v)
        if key in self._lag_by_key:
            raise TopologyError(
                f"duplicate LAG {key}; add links to the existing LAG instead"
            )

        if link_capacities is not None:
            if capacity is not None:
                raise TopologyError("pass link_capacities or capacity, not both")
            probs: Sequence[float | None]
            if link_probabilities is not None:
                if len(link_probabilities) != len(link_capacities):
                    raise TopologyError(
                        "link_probabilities length must match link_capacities"
                    )
                probs = list(link_probabilities)
            else:
                probs = [failure_probability] * len(link_capacities)
            links = [
                Link(capacity=c, failure_probability=p)
                for c, p in zip(link_capacities, probs)
            ]
        else:
            if capacity is None:
                raise TopologyError("pass link_capacities or capacity")
            if num_links < 1:
                raise TopologyError(f"a LAG needs at least one link, got {num_links}")
            per_link = capacity / num_links
            links = [
                Link(capacity=per_link, failure_probability=failure_probability)
                for _ in range(num_links)
            ]
        if not links:
            raise TopologyError("a LAG needs at least one link")

        lag = Lag(u=key[0], v=key[1], links=links, index=len(self._lags))
        self._lags.append(lag)
        self._lag_by_key[key] = lag
        self._adjacency[u].append(lag)
        self._adjacency[v].append(lag)
        return lag

    # -- queries ----------------------------------------------------------
    @property
    def nodes(self) -> list[str]:
        """Nodes in insertion order (do not mutate)."""
        return self._nodes

    @property
    def lags(self) -> list[Lag]:
        """LAGs in insertion order (do not mutate)."""
        return self._lags

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_lags(self) -> int:
        return len(self._lags)

    @property
    def num_links(self) -> int:
        """Total number of physical links across all LAGs."""
        return sum(lag.num_links for lag in self._lags)

    def has_node(self, name: str) -> bool:
        return name in self._node_set

    def lag_between(self, u: str, v: str) -> Lag | None:
        """The LAG connecting two nodes, or ``None``."""
        return self._lag_by_key.get(lag_key(u, v))

    def require_lag(self, u: str, v: str) -> Lag:
        """The LAG connecting two nodes; raises if absent."""
        lag = self.lag_between(u, v)
        if lag is None:
            raise TopologyError(f"no LAG between {u!r} and {v!r}")
        return lag

    def incident_lags(self, node: str) -> list[Lag]:
        """LAGs touching a node."""
        if node not in self._node_set:
            raise TopologyError(f"unknown node {node!r}")
        return self._adjacency[node]

    def neighbors(self, node: str) -> list[str]:
        """Adjacent nodes."""
        return [lag.other(node) for lag in self.incident_lags(node)]

    def average_lag_capacity(self) -> float:
        """Mean healthy LAG capacity -- the paper's normalization unit.

        Degradations throughout the evaluation are reported as multiples
        of this value ("a degradation of 2 means the network drops traffic
        equivalent to 2x the average capacity of a LAG").
        """
        if not self._lags:
            raise TopologyError("topology has no LAGs")
        return sum(lag.capacity for lag in self._lags) / len(self._lags)

    def has_probabilities(self) -> bool:
        """Whether every link in the topology has a failure probability."""
        return all(lag.has_probabilities for lag in self._lags)

    def path_is_valid(self, path: Sequence[str]) -> bool:
        """Whether consecutive nodes on the path are joined by LAGs."""
        if len(path) < 2:
            return False
        if len(set(path)) != len(path):
            return False
        return all(
            self.lag_between(a, b) is not None for a, b in zip(path, path[1:])
        )

    def lags_on_path(self, path: Sequence[str]) -> list[Lag]:
        """The LAGs a node path traverses, in order."""
        return [self.require_lag(a, b) for a, b in zip(path, path[1:])]

    # -- conversions and derivations ---------------------------------------
    def to_networkx(self):
        """Export to a :class:`networkx.Graph` with capacity attributes."""
        import networkx as nx

        graph = nx.Graph(name=self.name)
        graph.add_nodes_from(self._nodes)
        for lag in self._lags:
            graph.add_edge(
                lag.u, lag.v, capacity=lag.capacity, num_links=lag.num_links
            )
        return graph

    def is_connected(self) -> bool:
        """Whether the healthy topology is one connected component."""
        if not self._nodes:
            return False
        seen = {self._nodes[0]}
        frontier = [self._nodes[0]]
        while frontier:
            node = frontier.pop()
            for nxt in self.neighbors(node):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return len(seen) == len(self._nodes)

    def copy(self, name: str | None = None) -> Topology:
        """Deep-copy the topology (links are immutable and shared)."""
        out = Topology(name=name or self.name)
        out.add_nodes(self._nodes)
        for lag in self._lags:
            out.add_lag(lag.u, lag.v, link_capacities=[l.capacity for l in lag.links],
                        link_probabilities=None)
            # Preserve probabilities, including None, link by link.
            out._lags[-1].links = list(lag.links)
        out.srlgs = list(self.srlgs)
        return out

    def with_added_links(
        self, additions: dict[LagKey, list[Link]], name: str | None = None
    ) -> Topology:
        """Return a copy with extra links added to (possibly new) LAGs.

        Used by the capacity augmentation loop (Section 7): keys that match
        an existing LAG get the links appended; new keys create new LAGs.
        """
        out = self.copy(name=name or f"{self.name}+augment")
        for key, links in additions.items():
            if not links:
                continue
            existing = out._lag_by_key.get(lag_key(*key))
            if existing is not None:
                existing.links = existing.links + list(links)
            else:
                u, v = key
                out.add_lag(u, v, link_capacities=[l.capacity for l in links])
                out._lags[-1].links = list(links)
        return out

    def __repr__(self):
        return (
            f"Topology({self.name!r}, {self.num_nodes} nodes, "
            f"{self.num_lags} LAGs, {self.num_links} links)"
        )
