"""Demand matrices, the gravity model, and demand envelopes.

Raha treats demands three ways (Section 8):

* **fixed average** -- the mean demand per pair over a month;
* **fixed maximum** -- the per-pair peak over the same period;
* **variable** -- the outer adversary chooses any demand within per-pair
  bounds ``[0, d_k]`` (optionally widened by a *slack* percentage).

Production traces are proprietary; following the paper's own published
results we synthesize demands with a gravity model
(:func:`gravity_demands`) and derive average/maximum envelopes from a
seeded synthetic "month" of variation (:func:`synthesize_monthly_demands`).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import numpy as np

from repro.exceptions import TopologyError
from repro.network.topology import Topology

#: A source-destination pair; demands are directed even though LAGs are not.
Pair = tuple[str, str]


class DemandMatrix(dict):
    """A directed demand matrix: ``matrix[(src, dst)] = volume``.

    A thin dict subclass so it can be built, scaled, and compared with
    plain dict operations while carrying a few WAN-specific helpers.
    """

    @property
    def pairs(self) -> list[Pair]:
        """The demand pairs in insertion order."""
        return list(self.keys())

    @property
    def total(self) -> float:
        """Total offered traffic."""
        return float(sum(self.values()))

    def scaled(self, factor: float) -> DemandMatrix:
        """Return a copy with every demand multiplied by ``factor``."""
        if factor < 0:
            raise ValueError(f"demand scale factor must be nonnegative: {factor}")
        return DemandMatrix({pair: v * factor for pair, v in self.items()})

    def capped(self, cap: float) -> DemandMatrix:
        """Return a copy with every demand clamped to at most ``cap``.

        The paper applies such caps so "a single demand does not create a
        bottleneck" (Figure 8: half the average LAG capacity).
        """
        return DemandMatrix({pair: min(v, cap) for pair, v in self.items()})

    def restricted_to(self, pairs: Iterable[Pair]) -> DemandMatrix:
        """Return a copy containing only the given pairs."""
        wanted = set(pairs)
        return DemandMatrix({p: v for p, v in self.items() if p in wanted})

    def validate_for(self, topology: Topology) -> None:
        """Check all endpoints exist and no pair is a self-demand."""
        for (src, dst), volume in self.items():
            if not topology.has_node(src) or not topology.has_node(dst):
                raise TopologyError(f"demand pair ({src!r}, {dst!r}) not in topology")
            if src == dst:
                raise TopologyError(f"self-demand at {src!r}")
            if volume < 0:
                raise TopologyError(f"negative demand for ({src!r}, {dst!r})")


def all_pairs(topology: Topology) -> list[Pair]:
    """Every ordered node pair of the topology."""
    nodes = topology.nodes
    return [(s, d) for s in nodes for d in nodes if s != d]


def gravity_demands(
    topology: Topology,
    scale: float = 100.0,
    pairs: Iterable[Pair] | None = None,
    seed: int = 0,
) -> DemandMatrix:
    """Generate demands with a gravity model.

    Each node gets a mass proportional to its total incident LAG capacity
    (times a small seeded lognormal perturbation so masses are not exactly
    symmetric); the demand from ``s`` to ``d`` is
    ``scale * mass_s * mass_d / sum_of_masses``.  This mirrors the paper's
    published MLU setup ("generate the demand from a gravity model with a
    scale factor of 100 Gbps").

    Args:
        topology: The WAN.
        scale: Gravity scale factor (the largest pair demand is close to
            this value divided by the node count).
        pairs: Restrict to these pairs; defaults to all ordered pairs.
        seed: Seed for the mass perturbation.

    Returns:
        A :class:`DemandMatrix` over the requested pairs.
    """
    rng = np.random.default_rng(seed)
    mass = {}
    for node in topology.nodes:
        base = sum(lag.capacity for lag in topology.incident_lags(node))
        mass[node] = base * float(rng.lognormal(mean=0.0, sigma=0.25))
    total_mass = sum(mass.values())
    if total_mass <= 0:
        raise TopologyError("gravity model needs positive total capacity")

    selected = list(pairs) if pairs is not None else all_pairs(topology)
    matrix = DemandMatrix()
    for src, dst in selected:
        matrix[(src, dst)] = scale * mass[src] * mass[dst] / (total_mass**2)
    matrix.validate_for(topology)
    return matrix


def synthesize_monthly_demands(
    topology: Topology,
    scale: float = 100.0,
    pairs: Iterable[Pair] | None = None,
    days: int = 30,
    daily_sigma: float = 0.3,
    seed: int = 0,
) -> tuple[DemandMatrix, DemandMatrix]:
    """Synthesize a month of demands and return (average, maximum).

    The paper's fixed-demand experiments use "the average over a
    month-long period" and the per-pair maximum over the same period.  We
    draw per-day multiplicative lognormal noise around a gravity base.

    Returns:
        ``(average, maximum)`` demand matrices with ``average <= maximum``
        per pair.
    """
    base = gravity_demands(topology, scale=scale, pairs=pairs, seed=seed)
    rng = np.random.default_rng(seed + 1)
    avg = DemandMatrix()
    peak = DemandMatrix()
    for pair, volume in base.items():
        draws = volume * rng.lognormal(mean=0.0, sigma=daily_sigma, size=days)
        avg[pair] = float(draws.mean())
        peak[pair] = float(draws.max())
    return avg, peak


def demand_envelope(
    demands: Mapping[Pair, float],
    slack: float = 0.0,
    floor: float = 0.0,
) -> dict[Pair, tuple[float, float]]:
    """Build per-pair ``[lower, upper]`` bounds around a demand matrix.

    ``slack`` follows the paper's experiments (Sections 2.3, 8.3): each
    pair may take any value in ``[floor, d_k * (1 + slack/100)]``.  A slack
    of zero with ``floor=0`` reproduces "each demand falls in the interval
    [0, d_k]".

    Args:
        demands: Base demand matrix.
        slack: Upper-bound widening, in percent.
        floor: Lower bound for every pair (usually zero).

    Returns:
        Mapping from pair to ``(lower, upper)``.
    """
    if slack < 0:
        raise ValueError(f"slack must be nonnegative, got {slack}")
    factor = 1.0 + slack / 100.0
    envelope = {}
    for pair, volume in demands.items():
        upper = volume * factor
        if floor > upper:
            raise ValueError(
                f"floor {floor} exceeds widened demand {upper} for {pair}"
            )
        envelope[pair] = (floor, upper)
    return envelope


def top_pairs(demands: Mapping[Pair, float], count: int) -> list[Pair]:
    """The ``count`` largest demand pairs (used to scale down experiments)."""
    ordered = sorted(demands.items(), key=lambda item: item[1], reverse=True)
    return [pair for pair, _ in ordered[:count]]
