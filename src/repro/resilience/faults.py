"""Deterministic fault injection for the solver/runner/cache stack.

Raha's whole premise is that failures are not exceptional -- they are
the object of study.  This module applies the same mindset to the
analysis pipeline itself: a :class:`FaultPlan` is a seeded, serializable
description of *which* faults fire *where*, and the runner, cache,
journal, solver, and scenario resolver all carry named **injection
sites** that consult the active plan.  Tests (and the CLI's
``--chaos PLAN`` self-test mode) can therefore drive worker crashes,
wall-timeout overruns, torn cache/journal writes, and incumbent-free
solver time limits at controlled, reproducible points -- and assert the
stack degrades gracefully instead of aborting an hours-long campaign.

Determinism rules:

* Every decision is a pure function of ``(seed, site, key, attempt)``
  via SHA-256 -- no RNG state, no process identity.  The same plan
  applied to the same campaign injects the same faults, whether jobs run
  in-process or across a fresh pool of worker processes.
* Worker-level sites are additionally keyed by the *attempt number*, so
  a plan can make attempt 1 crash and attempt 2 succeed -- which is what
  lets a chaos campaign finish with results bit-identical to a
  fault-free run.
* ``max_fires`` counters are process-local state on top of the pure
  decision (used for in-process sites like the solver); cross-process
  sites should prefer ``attempts`` keying.

Known injection sites (the hook site implements the fault's behavior;
the plan only decides whether it fires):

=========================  ====================================================
site tag                   effect at the hook
=========================  ====================================================
``worker.crash``           worker process hard-exits (``os._exit``); raised as
                           a ``RuntimeError`` in in-process mode
``worker.timeout``         the job overruns its wall budget (settles
                           ``timeout``)
``worker.error``           the task raises a plain exception
``worker.hang``            the worker wedges (sleeps far past its heartbeat
                           cadence, then fails); the job's lease expires and
                           the scheduler's reaper requeues it
``lease.heartbeat``        a busy worker's lease renewal is silently dropped
                           (stalled heartbeat); enough drops and the reaper
                           requeues a job that is still being computed
``reaper.tick``            one reaper pass is skipped outright -- recovery of
                           hung jobs is delayed by one reap interval
``cache.torn_write``       ``ResultCache.put`` leaves a truncated entry
``journal.torn_append``    ``Journal.append`` writes a partial line with no
                           trailing newline (kill mid-write)
``solver.time_limit``      ``Model.solve`` returns ``TIME_LIMIT`` with no
                           incumbent
``resolver.resolve``       ``ScenarioResolver``'s incremental re-solve fails
``availability.chunk``     a Monte Carlo availability worker chunk fails
                           wholesale; the engine re-evaluates the chunk's
                           scenarios in the parent process
``store.crash_commit``     the service process dies right after a job-store
                           state transition commits (queue persistence)
``service.crash_claimed``  the service process dies after a worker claimed a
                           job but before running it (worker handoff)
``service.crash_settling`` the service process dies after a job's result is
                           computed (and cached) but before the store records
                           it as terminal
``distrib.claim``          a remote worker's claim request is dropped on the
                           wire before it is sent (the agent retries; a claim
                           whose *response* was lost is covered by the lease:
                           the orphaned claim lapses and is reaped)
``distrib.heartbeat``      a remote lease renewal is dropped on the wire;
                           enough drops and the reaper requeues the job while
                           the agent is still computing (its late settle is
                           then refused by the fence)
``distrib.settle``         a remote settle request is dropped on the wire; the
                           agent retries, and a replay of a settle that in
                           fact landed is refused (409) and treated as
                           already-settled
=========================  ====================================================

The three ``store.*``/``service.*`` sites exercise the analysis
service's crash recovery (:mod:`repro.service`): inside a real server
process they hard-exit (``kill -9`` semantics); in-process they raise
:class:`repro.service.store.InjectedServiceCrash` so tests can simulate
the death of a single worker thread without killing the test runner.

Zero faults means zero behavior change: every hook is a single
module-global ``None`` check when no plan is installed.
"""

from __future__ import annotations

import hashlib
import json
import os
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.exceptions import ModelingError

#: The site tags hooks exist for; plans naming anything else are rejected
#: early (a typo'd site would otherwise silently never fire).
KNOWN_SITES = (
    "worker.crash",
    "worker.timeout",
    "worker.error",
    "worker.hang",
    "lease.heartbeat",
    "reaper.tick",
    "cache.torn_write",
    "journal.torn_append",
    "solver.time_limit",
    "resolver.resolve",
    "availability.chunk",
    "store.crash_commit",
    "service.crash_claimed",
    "service.crash_settling",
    "distrib.claim",
    "distrib.heartbeat",
    "distrib.settle",
)


@dataclass(frozen=True)
class FaultPoint:
    """One injection rule: *where* and *how often* a fault fires.

    Attributes:
        site: Injection-site tag (one of :data:`KNOWN_SITES`).
        rate: Probability in ``[0, 1]`` that a matching invocation
            fires.  The draw is a pure hash of
            ``(plan seed, site, key, attempt)``, so it is reproducible
            across processes and runs.
        match: Optional substring the invocation key must contain
            (e.g. a job-key prefix to target one job).
        attempts: Attempt numbers this point may fire on, for sites
            that carry one (the ``worker.*`` sites).  The default
            ``(1,)`` makes faults transient: the first attempt fails,
            the retry succeeds.  ``()`` means "any attempt".
        max_fires: Cap on total fires of this point *in this process*
            (``None`` = unlimited).  Useful for in-process sites like
            ``solver.time_limit``; counters do not cross process
            boundaries.
    """

    site: str
    rate: float = 1.0
    match: str | None = None
    attempts: tuple[int, ...] = (1,)
    max_fires: int | None = None

    def __post_init__(self):
        if self.site not in KNOWN_SITES:
            raise ModelingError(
                f"unknown fault site {self.site!r}; known sites: "
                f"{', '.join(KNOWN_SITES)}"
            )
        if not (0.0 <= self.rate <= 1.0):
            raise ModelingError(
                f"fault rate must be in [0, 1], got {self.rate}"
            )
        if self.max_fires is not None and self.max_fires < 0:
            raise ModelingError(
                f"max_fires must be nonnegative, got {self.max_fires}"
            )
        object.__setattr__(
            self, "attempts", tuple(int(a) for a in self.attempts)
        )

    def to_dict(self) -> dict:
        out: dict = {"site": self.site, "rate": self.rate}
        if self.match is not None:
            out["match"] = self.match
        if self.attempts != (1,):
            out["attempts"] = list(self.attempts)
        if self.max_fires is not None:
            out["max_fires"] = self.max_fires
        return out

    @classmethod
    def from_dict(cls, data: dict) -> FaultPoint:
        unknown = set(data) - {"site", "rate", "match", "attempts",
                               "max_fires"}
        if unknown:
            raise ModelingError(
                f"unknown fault point field(s): {sorted(unknown)}"
            )
        if "site" not in data:
            raise ModelingError("a fault point needs a 'site' tag")
        return cls(
            site=data["site"],
            rate=float(data.get("rate", 1.0)),
            match=data.get("match"),
            attempts=tuple(data.get("attempts", (1,))),
            max_fires=data.get("max_fires"),
        )


def _draw(seed: int, site: str, key: str, attempt: int | None) -> float:
    """A deterministic uniform in ``[0, 1)`` for one invocation."""
    token = f"{seed}\0{site}\0{key}\0{'' if attempt is None else attempt}"
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


@dataclass
class FaultPlan:
    """A seeded set of :class:`FaultPoint` rules.

    Serializable to/from JSON so a plan can ride into worker processes
    (the executor ships ``to_dict()`` with each job) and be loaded from
    a ``--chaos`` CLI argument.

    Example::

        plan = FaultPlan(seed=7, points=[
            FaultPoint("worker.crash", rate=0.2),
            FaultPoint("cache.torn_write", rate=0.5),
        ])
        with injected(plan):
            run_sweep(spec, chaos=plan, ...)
    """

    seed: int = 0
    points: list[FaultPoint] = field(default_factory=list)
    #: Process-local fire counts per point index (not serialized).
    _fires: dict[int, int] = field(
        default_factory=dict, repr=False, compare=False
    )

    def fires(self, site: str, key: str = "", attempt: int | None = None
              ) -> bool:
        """Whether a fault fires at this invocation of ``site``.

        Args:
            site: The injection-site tag of the hook asking.
            key: Stable identity of the invocation (job key, cache key,
                journal record tag, model name, ...).
            attempt: Attempt number for sites that retry; ``None`` for
                sites without attempt semantics.
        """
        for index, point in enumerate(self.points):
            if point.site != site:
                continue
            if point.match is not None and point.match not in key:
                continue
            if point.attempts and attempt is not None \
                    and attempt not in point.attempts:
                continue
            if point.max_fires is not None \
                    and self._fires.get(index, 0) >= point.max_fires:
                continue
            if point.rate < 1.0 \
                    and _draw(self.seed, site, key, attempt) >= point.rate:
                continue
            self._fires[index] = self._fires.get(index, 0) + 1
            return True
        return False

    def to_dict(self) -> dict:
        return {
            "kind": "fault_plan",
            "seed": self.seed,
            "points": [point.to_dict() for point in self.points],
        }

    @classmethod
    def from_dict(cls, data: dict) -> FaultPlan:
        if data.get("kind") not in (None, "fault_plan"):
            raise ModelingError(
                f"expected a fault_plan document, got {data.get('kind')!r}"
            )
        return cls(
            seed=int(data.get("seed", 0)),
            points=[FaultPoint.from_dict(p) for p in data.get("points", [])],
        )

    @classmethod
    def from_arg(cls, text: str) -> FaultPlan:
        """Parse a ``--chaos`` argument: inline JSON or a file path."""
        text = text.strip()
        if text.startswith("{"):
            return cls.from_dict(json.loads(text))
        if not os.path.exists(text):
            raise ModelingError(
                f"--chaos argument {text!r} is neither inline JSON nor an "
                "existing plan file"
            )
        with open(text) as handle:
            return cls.from_dict(json.load(handle))


#: The process's active plan.  ``None`` (the overwhelmingly common case)
#: makes every hook a single attribute check.
_ACTIVE: FaultPlan | None = None


def install_plan(plan: FaultPlan | dict | None) -> FaultPlan | None:
    """Install ``plan`` as the process-wide active plan.

    Returns:
        The previously active plan (so callers can restore it).
    """
    global _ACTIVE
    previous = _ACTIVE
    if isinstance(plan, dict):
        plan = FaultPlan.from_dict(plan)
    _ACTIVE = plan
    return previous


def clear_plan() -> None:
    """Remove the active plan (hooks become no-ops again)."""
    install_plan(None)


def active_plan() -> FaultPlan | None:
    """The currently installed plan, or ``None``."""
    return _ACTIVE


def maybe_fire(site: str, key: str = "", attempt: int | None = None) -> bool:
    """The hook sites' entry point: does a fault fire here, now?

    Free when no plan is installed -- a single global ``None`` check.
    """
    if _ACTIVE is None:
        return False
    return _ACTIVE.fires(site, key=key, attempt=attempt)


@contextmanager
def injected(plan: FaultPlan | dict | None):
    """Scope an active plan to a ``with`` block (tests' main entry)."""
    previous = install_plan(plan)
    try:
        yield active_plan()
    finally:
        install_plan(previous)
