"""repro.resilience: deterministic fault injection + graceful degradation.

Two halves:

* :mod:`repro.resilience.faults` -- the seeded, serializable
  :class:`FaultPlan`/:class:`FaultPoint` harness.  Hook sites threaded
  through the runner (executor/cache/journal), the solver, and the
  scenario resolver consult the process's active plan, so tests and the
  CLI's ``--chaos`` self-test can inject worker crashes, torn writes,
  and incumbent-free time limits at controlled points.
* The *hardening* that makes the stack survive those faults lives at
  the sites themselves: checksummed + quarantined cache entries
  (:mod:`repro.runner.cache`), crash-tolerant journal reads/appends
  (:mod:`repro.runner.journal`), exponential backoff with deterministic
  jitter and a per-job failure budget (:mod:`repro.runner.executor`),
  the analyzer's solver fallback ladder
  (:class:`repro.core.analyzer.RahaAnalyzer` +
  :class:`repro.core.config.ResilienceConfig`), and the scenario
  resolver's fresh-solve fallback
  (:class:`repro.failures.montecarlo.ScenarioResolver`).

See docs/operations.md ("Chaos testing and failure semantics") for the
operational contract.
"""

from repro.resilience.faults import (
    KNOWN_SITES,
    FaultPlan,
    FaultPoint,
    active_plan,
    clear_plan,
    injected,
    install_plan,
    maybe_fire,
)

__all__ = [
    "KNOWN_SITES",
    "FaultPlan",
    "FaultPoint",
    "active_plan",
    "clear_plan",
    "injected",
    "install_plan",
    "maybe_fire",
]
