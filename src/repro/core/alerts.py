"""The two-tier operational alert pipeline (Sections 1 and 3).

Operationally Raha runs online after every failure:

1. **Tier 1 (fast, ~10 minutes)**: with demands fixed to the historical
   peak per pair, check whether a probable failure scenario degrades the
   network beyond tolerance.  The healthy optimum is a constant here, so
   the MILP is small (Section 6).
2. **Tier 2 (slow, < 1 hour)**: if tier 1 is clean, search demands *and*
   failures jointly; alert if any demand within the operator's envelope
   can be degraded.

"If the impact goes beyond the operator's tolerance levels, then Raha
raises an alert to notify them."
"""

from __future__ import annotations

import enum
from collections.abc import Mapping
from dataclasses import dataclass

from repro.core.analyzer import RahaAnalyzer
from repro.core.config import RahaConfig
from repro.core.degradation import DegradationResult
from repro.network.demand import Pair
from repro.network.topology import Topology
from repro.paths.pathset import PathSet


class AlertSeverity(enum.Enum):
    """How urgent an alert is."""

    CRITICAL = "critical"  # tier-1: peak demand already degradable
    WARNING = "warning"  # tier-2: some feasible demand is degradable
    INFO = "info"  # analysis ran clean


@dataclass
class Alert:
    """One pipeline outcome.

    Attributes:
        severity: Urgency tier.
        message: Human-readable description for the on-call channel.
        result: The full analysis result backing the alert.
        tier: 1 for the fast fixed-demand check, 2 for the joint search.
    """

    severity: AlertSeverity
    message: str
    result: DegradationResult
    tier: int

    @property
    def fired(self) -> bool:
        """Whether this alert indicates a problem."""
        return self.severity != AlertSeverity.INFO


class AlertPipeline:
    """Run Raha's two-tier online check.

    Args:
        topology: The current WAN state.
        paths: Configured paths.
        tolerance: Normalized degradation above which to alert.
        probability_threshold: "Probable" floor ``T`` for scenarios.
        fast_time_limit: Solver budget for tier 1 (paper: 10 minutes).
        slow_time_limit: Solver budget for tier 2 (paper: under an hour).
    """

    def __init__(
        self,
        topology: Topology,
        paths: PathSet,
        tolerance: float = 0.0,
        probability_threshold: float | None = 1e-4,
        fast_time_limit: float = 600.0,
        slow_time_limit: float = 3600.0,
    ):
        self.topology = topology
        self.paths = paths
        self.tolerance = tolerance
        self.probability_threshold = probability_threshold
        self.fast_time_limit = fast_time_limit
        self.slow_time_limit = slow_time_limit

    def check_fixed(self, peak_demands: Mapping[Pair, float]) -> Alert:
        """Tier 1: fixed peak demands, failure search only."""
        config = RahaConfig(
            fixed_demands=dict(peak_demands),
            probability_threshold=self.probability_threshold,
            time_limit=self.fast_time_limit,
        )
        result = RahaAnalyzer(self.topology, self.paths, config).analyze()
        if result.normalized_degradation > self.tolerance:
            return Alert(
                severity=AlertSeverity.CRITICAL,
                message=(
                    "probable failure scenario degrades peak traffic by "
                    f"{result.normalized_degradation:.3g}x the average LAG "
                    f"capacity ({result.scenario.num_failed_links} links)"
                ),
                result=result,
                tier=1,
            )
        return Alert(
            severity=AlertSeverity.INFO,
            message="peak demand is safe against probable failures",
            result=result,
            tier=1,
        )

    def check_variable(
        self, demand_bounds: Mapping[Pair, tuple[float, float]]
    ) -> Alert:
        """Tier 2: joint search over demands within the envelope."""
        config = RahaConfig(
            demand_bounds=dict(demand_bounds),
            probability_threshold=self.probability_threshold,
            time_limit=self.slow_time_limit,
        )
        result = RahaAnalyzer(self.topology, self.paths, config).analyze()
        if result.normalized_degradation > self.tolerance:
            return Alert(
                severity=AlertSeverity.WARNING,
                message=(
                    "a demand within the envelope can be degraded by "
                    f"{result.normalized_degradation:.3g}x the average LAG "
                    "capacity under probable failures"
                ),
                result=result,
                tier=2,
            )
        return Alert(
            severity=AlertSeverity.INFO,
            message="no demand in the envelope is degradable",
            result=result,
            tier=2,
        )

    def run(
        self,
        peak_demands: Mapping[Pair, float],
        demand_bounds: Mapping[Pair, tuple[float, float]],
    ) -> list[Alert]:
        """The full pipeline: tier 1, then tier 2 only if tier 1 is clean."""
        first = self.check_fixed(peak_demands)
        if first.fired:
            return [first]
        second = self.check_variable(demand_bounds)
        return [first, second]

    def after_failure(
        self,
        occurred,
        peak_demands: Mapping[Pair, float],
        demand_bounds: Mapping[Pair, tuple[float, float]] | None = None,
    ) -> tuple["AlertPipeline", list[Alert]]:
        """Re-run the pipeline on the WAN degraded by an actual failure.

        The paper's online loop: Raha "runs immediately after each
        failure occurs to check whether there exists a probable failure
        that can significantly impact our network" -- before the next
        event consumes the remaining lead time.

        Args:
            occurred: The :class:`repro.failures.FailureScenario` that
                materialized.
            peak_demands: Tier-1 fixed demands.
            demand_bounds: Tier-2 envelope; tier 2 is skipped when
                ``None``.

        Returns:
            ``(degraded_pipeline, alerts)`` -- the pipeline bound to the
            degraded topology (reusable for the *next* failure) and the
            alerts it raised.
        """
        degraded = occurred.applied_to(self.topology)
        pipeline = AlertPipeline(
            degraded, self.paths,
            tolerance=self.tolerance,
            probability_threshold=self.probability_threshold,
            fast_time_limit=self.fast_time_limit,
            slow_time_limit=self.slow_time_limit,
        )
        if demand_bounds is None:
            alerts = [pipeline.check_fixed(peak_demands)]
        else:
            alerts = pipeline.run(peak_demands, demand_bounds)
        return pipeline, alerts
