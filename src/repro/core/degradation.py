"""Result types for degradation analysis."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.failures.scenario import FailureScenario
from repro.network.demand import DemandMatrix


@dataclass
class DegradationResult:
    """What Raha found: the worst demand/failure pair and the gap.

    Attributes:
        degradation: Healthy-network performance minus failed-network
            performance.  For the total-flow objective this is dropped
            traffic (the paper's headline metric); for MLU it is the
            utilization *increase* ``U_failed - U_healthy``.
        normalized_degradation: ``degradation`` divided by the average LAG
            capacity -- the unit every figure in the paper reports.
        demands: The demand matrix achieving the worst case (the input
            matrix in fixed mode; the adversary's choice in joint mode).
        scenario: The failure scenario achieving the worst case.
        healthy_value / failed_value: The two inner objectives.
        scenario_probability: Probability of the scenario (``None`` when
            the topology has no link probabilities).
        status: Final solver status string (``"optimal"`` or
            ``"time_limit"`` -- a time-limited result is the incumbent).
        solve_seconds: Time inside the MILP solver.
        encode_seconds: Time spent building the MILP.
        path_seconds: Path computation time (the paper includes it in
            reported runtimes).
        verified: Whether post-solve verification ran and passed.
        num_binaries / num_variables / num_constraints: Model size, for
            the scaling analysis (Figure 10's discussion).
        solver_stats: The MILP's per-solve telemetry
            (:meth:`repro.solver.result.SolveStats.to_dict` -- build /
            compile / solve wall times, matrix size, big-M magnitudes),
            or ``None`` for results from older runs.
    """

    degradation: float
    normalized_degradation: float
    demands: DemandMatrix
    scenario: FailureScenario
    healthy_value: float
    failed_value: float
    scenario_probability: float | None = None
    status: str = "optimal"
    solve_seconds: float = 0.0
    encode_seconds: float = 0.0
    path_seconds: float = 0.0
    verified: bool = False
    num_binaries: int = 0
    num_variables: int = 0
    num_constraints: int = 0
    solver_stats: dict | None = None
    notes: list[str] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        """End-to-end runtime: paths + encoding + solving."""
        return self.solve_seconds + self.encode_seconds + self.path_seconds

    def summary(self) -> str:
        """One-line human-readable summary."""
        prob = (
            f", p={self.scenario_probability:.2e}"
            if self.scenario_probability is not None
            else ""
        )
        return (
            f"degradation={self.degradation:.4g} "
            f"(normalized {self.normalized_degradation:.4g}) with "
            f"{self.scenario.num_failed_links} failed links{prob}; "
            f"healthy={self.healthy_value:.4g} failed={self.failed_value:.4g} "
            f"[{self.status}, {self.total_seconds:.2f}s]"
        )
