"""Result types for degradation analysis."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.failures.scenario import FailureScenario
from repro.network.demand import DemandMatrix


@dataclass
class DegradationResult:
    """What Raha found: the worst demand/failure pair and the gap.

    Attributes:
        degradation: Healthy-network performance minus failed-network
            performance.  For the total-flow objective this is dropped
            traffic (the paper's headline metric); for MLU it is the
            utilization *increase* ``U_failed - U_healthy``.
        normalized_degradation: ``degradation`` divided by the average LAG
            capacity -- the unit every figure in the paper reports.
        demands: The demand matrix achieving the worst case (the input
            matrix in fixed mode; the adversary's choice in joint mode).
        scenario: The failure scenario achieving the worst case.
        healthy_value / failed_value: The two inner objectives.
        scenario_probability: Probability of the scenario (``None`` when
            the topology has no link probabilities).
        status: Final solver status string (``"optimal"`` or
            ``"time_limit"`` -- a time-limited result is the incumbent).
        solve_seconds: Time inside the MILP solver.
        encode_seconds: Time spent building the MILP.
        path_seconds: Path computation time (the paper includes it in
            reported runtimes).
        verified: Whether post-solve verification ran and passed.
        num_binaries / num_variables / num_constraints: Model size, for
            the scaling analysis (Figure 10's discussion).
        solver_stats: The MILP's per-solve telemetry
            (:meth:`repro.solver.result.SolveStats.to_dict` -- build /
            compile / solve wall times, matrix size, big-M magnitudes),
            or ``None`` for results from older runs.
    """

    #: Distinguishes a full result from a :class:`PartialResult` without
    #: isinstance checks (handy on serialized/duck-typed results).
    is_partial = False

    degradation: float
    normalized_degradation: float
    demands: DemandMatrix
    scenario: FailureScenario
    healthy_value: float
    failed_value: float
    scenario_probability: float | None = None
    status: str = "optimal"
    solve_seconds: float = 0.0
    encode_seconds: float = 0.0
    path_seconds: float = 0.0
    verified: bool = False
    num_binaries: int = 0
    num_variables: int = 0
    num_constraints: int = 0
    solver_stats: dict | None = None
    notes: list[str] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        """End-to-end runtime: paths + encoding + solving."""
        return self.solve_seconds + self.encode_seconds + self.path_seconds

    def summary(self) -> str:
        """One-line human-readable summary."""
        prob = (
            f", p={self.scenario_probability:.2e}"
            if self.scenario_probability is not None
            else ""
        )
        return (
            f"degradation={self.degradation:.4g} "
            f"(normalized {self.normalized_degradation:.4g}) with "
            f"{self.scenario.num_failed_links} failed links{prob}; "
            f"healthy={self.healthy_value:.4g} failed={self.failed_value:.4g} "
            f"[{self.status}, {self.total_seconds:.2f}s]"
        )


@dataclass
class PartialResult:
    """A *bound* on the worst degradation, from the solver fallback ladder.

    Produced instead of a :class:`SolverError` when the Raha MILP hits
    its time limit with no incumbent, every escalated retry does too,
    and the analysis runs with ``ResilienceConfig.allow_partial=True``:
    the LP relaxation's optimum is a provably valid *bound* on the MILP
    optimum (integrality only shrinks the feasible set), so "degradation
    cannot exceed ``bound``" is still a sound, reportable statement even
    though the exact worst case is unknown.

    What a partial result does NOT carry: a witness.  The relaxation's
    solution is fractional, so there is no demand matrix, no failure
    scenario, and no simulation cross-check -- only the bound and the
    provenance of how it was obtained.

    Attributes:
        bound: Bound on the degradation objective (an upper bound --
            maximization MILP).  In ``minimize_performance`` mode the
            objective is the negated failed-network performance, so the
            bound applies to that raw objective; the provenance records
            the mode.
        normalized_bound: ``bound`` divided by the average LAG capacity
            (``bound`` itself for MLU, matching
            :attr:`DegradationResult.normalized_degradation`).
        objective: The analysis objective (``total_flow``/``mlu``/...).
        status: Always ``"partial"``.
        provenance: Human-readable trail of the ladder: the original
            timeout, each escalated retry, and the relaxation solve.
        time_limits_tried: MILP time limits attempted, in order.
        solve_seconds: Total solver time across ladder rungs.
        encode_seconds: Time spent building the MILP (once).
        solver_stats: Telemetry of the relaxation solve, or ``None``.
    """

    is_partial = True

    bound: float
    normalized_bound: float
    objective: str = "total_flow"
    status: str = "partial"
    provenance: list[str] = field(default_factory=list)
    time_limits_tried: list[float] = field(default_factory=list)
    solve_seconds: float = 0.0
    encode_seconds: float = 0.0
    solver_stats: dict | None = None

    def summary(self) -> str:
        """One-line human-readable summary."""
        limits = ", ".join(f"{t:g}s" for t in self.time_limits_tried)
        return (
            f"PARTIAL: degradation <= {self.bound:.4g} "
            f"(normalized {self.normalized_bound:.4g}) via LP relaxation; "
            f"no incumbent within time limits [{limits}]"
        )
