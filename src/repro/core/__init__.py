"""Raha's core: the degradation analyzer, encodings, augments, alerts.

* :mod:`repro.core.config` -- :class:`RahaConfig`, the knob surface
  (objective, probability threshold, max failures, CE, naive fail-over,
  demand mode, timeouts).
* :mod:`repro.core.encodings` -- the Section 5 MILP encodings: link/LAG/
  path failure variables (Eqs. 3-4), backup activation and path-extension
  capacities (Eq. 5), probability and count constraints (Section 5.1).
* :mod:`repro.core.analyzer` -- :class:`RahaAnalyzer`, the public entry
  point that assembles the Stackelberg game and returns a
  :class:`repro.core.degradation.DegradationResult`.
* :mod:`repro.core.augment` -- capacity augmentation (Section 7 and
  Appendix C).
* :mod:`repro.core.alerts` -- the two-tier operational alert pipeline.
"""

from repro.core.alerts import Alert, AlertPipeline
from repro.core.analyzer import RahaAnalyzer
from repro.core.augment import augment_existing_lags, augment_new_lags
from repro.core.config import RahaConfig
from repro.core.degradation import DegradationResult

__all__ = [
    "Alert",
    "AlertPipeline",
    "DegradationResult",
    "RahaAnalyzer",
    "RahaConfig",
    "augment_existing_lags",
    "augment_new_lags",
]
