"""Configuration surface for the Raha analyzer and the sweep runner."""

from __future__ import annotations

import hashlib
import os
from collections.abc import Mapping
from dataclasses import dataclass, field

from repro.exceptions import ModelingError
from repro.network.demand import Pair

#: Objectives Raha can analyze (Section 5 / Appendix A).
OBJECTIVES = ("total_flow", "mlu", "maxmin")

#: Cap on the *default* sweep worker count: MILP solves are memory-heavy
#: (each worker holds a full model), so auto-scaling stops here even on
#: very wide machines.  Explicit ``--jobs`` can exceed it.
MAX_DEFAULT_WORKERS = 8


def default_num_workers(cap: int = MAX_DEFAULT_WORKERS) -> int:
    """The sweep runner's default parallelism: ``cpu_count - 1``, capped.

    One core is left for the parent (journal/cache/progress bookkeeping
    and the OS); the result is clamped to ``[1, cap]``.
    """
    return max(1, min((os.cpu_count() or 2) - 1, cap))


@dataclass
class RunnerConfig:
    """Knobs for the sweep-execution subsystem (:mod:`repro.runner`).

    Attributes:
        num_workers: Worker processes; ``None`` means
            :func:`default_num_workers`.  ``1`` runs jobs in-process
            (no pool), which is also the deterministic-debugging mode.
        retries: How many times a failed/timed-out/crashed job is
            re-attempted before it settles with a structured error.
        backoff_seconds: Base of the exponential retry backoff: the
            delay before re-attempting after the n-th failure is
            ``backoff_seconds * backoff_factor**(n-1)``, jittered and
            capped (see :meth:`backoff_delay`).
        backoff_factor: Exponential growth per retry (``>= 1``).
        backoff_max_seconds: Ceiling on any single backoff delay.
        backoff_jitter: Fraction of deterministic jitter added on top of
            the exponential delay (``delay * (1 + u * jitter)`` with
            ``u in [0, 1)`` hashed from the job key + attempt).  Must
            satisfy ``jitter <= backoff_factor - 1`` so delays stay
            monotone nondecreasing; jitter decorrelates retry storms
            without sacrificing reproducibility.
        failure_budget_seconds: Per-job cap on wall time spent in
            *failed* attempts; once exceeded the job settles with a
            structured error even if retries remain (``None`` = no
            budget).  This bounds how long one poisonous job can stall
            a campaign.
        wall_timeout_factor / wall_timeout_margin: Per-job wall-clock
            timeout, derived from the job's solver ``time_limit`` as
            ``time_limit * factor + margin`` -- the margin covers
            instance rebuild + encode time outside the solver.  Jobs
            without a ``time_limit`` get no wall timeout.
    """

    num_workers: int | None = None
    retries: int = 1
    backoff_seconds: float = 0.25
    backoff_factor: float = 2.0
    backoff_max_seconds: float = 30.0
    backoff_jitter: float = 0.5
    failure_budget_seconds: float | None = None
    wall_timeout_factor: float = 3.0
    wall_timeout_margin: float = 30.0

    def __post_init__(self):
        if self.num_workers is not None and self.num_workers < 1:
            raise ModelingError(
                f"num_workers must be >= 1, got {self.num_workers}"
            )
        if self.retries < 0:
            raise ModelingError(f"retries must be >= 0, got {self.retries}")
        if self.backoff_seconds < 0:
            raise ModelingError(
                f"backoff_seconds must be >= 0, got {self.backoff_seconds}"
            )
        if self.backoff_factor < 1.0:
            raise ModelingError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.backoff_max_seconds < 0:
            raise ModelingError(
                f"backoff_max_seconds must be >= 0, got "
                f"{self.backoff_max_seconds}"
            )
        if not (0.0 <= self.backoff_jitter <= self.backoff_factor - 1.0):
            raise ModelingError(
                f"backoff_jitter must be in [0, backoff_factor - 1] so "
                f"jittered delays stay monotone, got {self.backoff_jitter} "
                f"with factor {self.backoff_factor}"
            )
        if self.failure_budget_seconds is not None \
                and self.failure_budget_seconds < 0:
            raise ModelingError(
                f"failure_budget_seconds must be >= 0, got "
                f"{self.failure_budget_seconds}"
            )
        if self.wall_timeout_factor <= 0 or self.wall_timeout_margin < 0:
            raise ModelingError(
                "wall_timeout_factor must be > 0 and wall_timeout_margin "
                f">= 0, got ({self.wall_timeout_factor}, "
                f"{self.wall_timeout_margin})"
            )

    def resolved_workers(self) -> int:
        """The effective worker count."""
        return self.num_workers if self.num_workers is not None \
            else default_num_workers()

    def wall_timeout_for(self, time_limit: float | None) -> float | None:
        """Wall-clock budget for a job with the given solver budget."""
        if time_limit is None:
            return None
        return time_limit * self.wall_timeout_factor + self.wall_timeout_margin

    def backoff_delay(self, attempt: int, key: str = "") -> float:
        """Seconds to wait before re-attempting after the n-th failure.

        Exponential in the attempt number with deterministic jitter
        hashed from ``(key, attempt)``, capped at
        ``backoff_max_seconds``.  Because the jitter fraction is bounded
        by ``backoff_factor - 1``, the sequence is monotone
        nondecreasing in ``attempt`` -- retries never come back *sooner*
        after more failures.
        """
        if attempt < 1:
            raise ModelingError(f"attempt must be >= 1, got {attempt}")
        raw = self.backoff_seconds * self.backoff_factor ** (attempt - 1)
        if self.backoff_jitter > 0.0:
            digest = hashlib.sha256(
                f"{key}\0{attempt}".encode("utf-8")
            ).digest()
            unit = int.from_bytes(digest[:8], "big") / float(1 << 64)
            raw *= 1.0 + unit * self.backoff_jitter
        return min(raw, self.backoff_max_seconds)


@dataclass
class MonteCarloConfig:
    """Knobs for the Monte Carlo availability engine
    (:mod:`repro.failures.availability`).

    Attributes:
        samples: Scenario draws per sampling round (and the total when
            adaptive stopping is off).
        seed: RNG seed; the vectorized sampler consumes the exact same
            stream as the serial ``sample_scenario`` loop, so serial and
            parallel runs see identical scenario sequences.
        degradation_threshold: Threshold of the exceedance statistic
            (same units as demands).
        num_workers: Worker processes for chunk evaluation; ``None``
            means :func:`default_num_workers`, ``1`` evaluates
            in-process (no pool).
        chunk_size: Distinct scenarios per worker chunk.  Fixed --
            deliberately *not* derived from the worker count -- so the
            chunk partition (and with it every retry/chaos/cache
            decision) is identical at any ``--jobs``.
        ci_width: Optional adaptive-stopping target: keep sampling in
            rounds of ``samples`` until the normal-approximation
            confidence interval on availability is at most this wide
            (``None`` = fixed sample count).
        ci_confidence: Confidence level of that interval.
        max_samples: Hard cap on total draws under adaptive stopping;
            ``None`` defaults to ``20 * samples``.
    """

    samples: int = 200
    seed: int = 0
    degradation_threshold: float = 0.0
    num_workers: int | None = None
    chunk_size: int = 32
    ci_width: float | None = None
    ci_confidence: float = 0.95
    max_samples: int | None = None

    def __post_init__(self):
        if self.samples < 1:
            raise ModelingError(
                f"need at least one sample, got {self.samples}"
            )
        if self.num_workers is not None and self.num_workers < 1:
            raise ModelingError(
                f"num_workers must be >= 1, got {self.num_workers}"
            )
        if self.chunk_size < 1:
            raise ModelingError(
                f"chunk_size must be >= 1, got {self.chunk_size}"
            )
        if self.ci_width is not None and self.ci_width <= 0:
            raise ModelingError(
                f"ci_width must be > 0, got {self.ci_width}"
            )
        if not (0.0 < self.ci_confidence < 1.0):
            raise ModelingError(
                f"ci_confidence must be in (0, 1), got {self.ci_confidence}"
            )
        if self.max_samples is not None and self.max_samples < self.samples:
            raise ModelingError(
                f"max_samples ({self.max_samples}) must be >= samples "
                f"({self.samples})"
            )

    def resolved_workers(self) -> int:
        """The effective worker count."""
        return self.num_workers if self.num_workers is not None \
            else default_num_workers()

    def resolved_max_samples(self) -> int:
        """The adaptive-stopping draw cap."""
        return self.max_samples if self.max_samples is not None \
            else 20 * self.samples


@dataclass
class BenchConfig:
    """Knobs for the benchmark harness (:mod:`repro.bench`).

    One config drives both halves of the regression loop: how ``bench
    run`` samples each case (warmup + repetitions) and how ``bench
    compare`` decides that a new median is a regression rather than
    noise.

    The comparison ceiling for a case is::

        allowed = base_median * (1 + rel_tolerance)
                  + mad_multiplier * max(base_mad, new_mad)
                  + abs_floor_seconds

    and the case regresses when its new median exceeds it.  The MAD
    term scales the threshold with the case's *observed* run-to-run
    noise (a jittery case needs more slack than a steady one); the
    absolute floor keeps microsecond-scale cases from flagging on
    scheduler jitter alone.

    Attributes:
        warmup: Un-timed runs per case before sampling starts
            (imports, allocator warmup, compile caches).
        repetitions: Timed runs per case; the median is the headline
            number, the MAD the noise estimate.
        rel_tolerance: Fractional slowdown of the baseline median
            tolerated before flagging (``0.25`` = 25%).
        mad_multiplier: How many MADs of slack the noisier of the two
            runs adds to the ceiling.
        abs_floor_seconds: Absolute slack added to every ceiling.
    """

    warmup: int = 1
    repetitions: int = 3
    rel_tolerance: float = 0.25
    mad_multiplier: float = 5.0
    abs_floor_seconds: float = 0.05

    def __post_init__(self):
        if self.warmup < 0:
            raise ModelingError(f"warmup must be >= 0, got {self.warmup}")
        if self.repetitions < 1:
            raise ModelingError(
                f"repetitions must be >= 1, got {self.repetitions}"
            )
        if self.rel_tolerance < 0:
            raise ModelingError(
                f"rel_tolerance must be >= 0, got {self.rel_tolerance}"
            )
        if self.mad_multiplier < 0:
            raise ModelingError(
                f"mad_multiplier must be >= 0, got {self.mad_multiplier}"
            )
        if self.abs_floor_seconds < 0:
            raise ModelingError(
                f"abs_floor_seconds must be >= 0, got "
                f"{self.abs_floor_seconds}"
            )


@dataclass
class SupervisionConfig:
    """Self-healing supervision policy for the analysis service.

    Governs the lease/heartbeat/reaper machinery that recovers hung
    workers *while the service runs* (not just at restart), and the
    poison-job quarantine that stops crash-looping jobs from eating the
    worker pool forever (:mod:`repro.service.scheduler`).

    Attributes:
        lease_seconds: How long one claim owns a job.  A worker renews
            its lease via heartbeats while the job runs; a lease that
            expires un-renewed means the worker is hung or dead, and
            the reaper requeues the job (same exactly-once audit
            transitions as startup recovery).
        heartbeat_interval_seconds: How often a busy worker renews its
            lease; ``None`` derives ``lease_seconds / 3`` so two missed
            beats still leave slack before expiry.
        reap_interval_seconds: How often the reaper scans for expired
            leases, exhausted poison jobs, and missed deadlines;
            ``None`` derives ``lease_seconds / 2`` (a hung job is
            recovered within one lease period).
        max_job_attempts: Store-level claim budget per job.  A job
            whose claims (counted across crashes, restarts, and reaps)
            reach this is **quarantined** -- a terminal state with the
            last error preserved -- instead of crash-looping; operators
            inspect and requeue via ``POST /v1/analyses/<id>/retry``.
        max_lease_renewal_seconds: Hard cap on how long one claim's
            heartbeat may keep renewing its lease.  Heartbeats run on
            the scheduler thread, so they outlive a solve wedged
            inside the worker process; without a renewal bound such a
            claim would hold its lease forever.  For jobs with a
            derivable wall timeout the scheduler already stops
            renewing past the worst-case retry budget -- this cap
            additionally bounds jobs *without* one (``None``, the
            default, leaves those unbounded: the reaper then only
            covers dropped heartbeats and dead processes for them).
    """

    lease_seconds: float = 60.0
    heartbeat_interval_seconds: float | None = None
    reap_interval_seconds: float | None = None
    max_job_attempts: int = 5
    max_lease_renewal_seconds: float | None = None

    def __post_init__(self):
        if self.lease_seconds <= 0:
            raise ModelingError(
                f"lease_seconds must be > 0, got {self.lease_seconds}"
            )
        if self.heartbeat_interval_seconds is not None \
                and self.heartbeat_interval_seconds <= 0:
            raise ModelingError(
                f"heartbeat_interval_seconds must be > 0, got "
                f"{self.heartbeat_interval_seconds}"
            )
        if self.reap_interval_seconds is not None \
                and self.reap_interval_seconds <= 0:
            raise ModelingError(
                f"reap_interval_seconds must be > 0, got "
                f"{self.reap_interval_seconds}"
            )
        if self.max_job_attempts < 1:
            raise ModelingError(
                f"max_job_attempts must be >= 1, got "
                f"{self.max_job_attempts}"
            )
        if self.max_lease_renewal_seconds is not None \
                and self.max_lease_renewal_seconds <= 0:
            raise ModelingError(
                f"max_lease_renewal_seconds must be > 0, got "
                f"{self.max_lease_renewal_seconds}"
            )

    def resolved_heartbeat_interval(self) -> float:
        """The effective heartbeat period (defaults to a third of the
        lease, so a lease survives two missed beats)."""
        if self.heartbeat_interval_seconds is not None:
            return self.heartbeat_interval_seconds
        return self.lease_seconds / 3.0

    def resolved_reap_interval(self) -> float:
        """The effective reaper period (defaults to half the lease)."""
        if self.reap_interval_seconds is not None:
            return self.reap_interval_seconds
        return self.lease_seconds / 2.0


@dataclass
class DistribConfig:
    """Knobs for the distributed worker fleet (:mod:`repro.distrib`).

    One config covers both sides of the claim protocol: the worker
    agent (``python -m repro worker``) pulling jobs over HTTP, and the
    coordinator's claim-rate shedding.

    Attributes:
        num_workers: Worker slots (concurrent claims) in one agent.
        lease_seconds: Lease the agent requests per claim; renewed from
            a heartbeat thread while the job runs.  Must comfortably
            exceed the claim round-trip, or the reaper will requeue
            jobs that are in fact healthy.
        heartbeat_interval_seconds: How often a busy slot renews its
            lease; ``None`` derives ``lease_seconds / 3`` (two missed
            or dropped beats still leave slack before expiry).
        poll_interval_seconds: How long an idle slot waits after an
            empty claim before polling the coordinator again.
        drain_timeout_seconds: On SIGINT/SIGTERM, how long the agent
            waits for in-flight jobs before giving up the join
            (abandoned claims are left to lapse and be reaped).
        request_timeout_seconds: Per-HTTP-request timeout.
        retries: Transient-failure retry budget per fleet request
            (connection refused, resets, injected ``distrib.*`` drops).
            Claim/heartbeat/release replays are safe by construction
            (leases + fencing); a settle whose response was lost
            surfaces as a refused (409) replay the agent treats as
            already-settled.
        retry_backoff_seconds: Base backoff between retries, scaled
            ``2**attempt`` with deterministic per-key jitter and capped
            at ``retry_backoff_max_seconds``.
        retry_backoff_max_seconds: Backoff ceiling.
        max_claims_per_second: Coordinator-side claim-rate shed: a
            token bucket refilled at this rate (burst of one second's
            worth) 429s claim requests beyond it, keeping an
            over-scaled fleet from stampeding the store.  ``None``
            disables shedding.
    """

    num_workers: int = 2
    lease_seconds: float = 60.0
    heartbeat_interval_seconds: float | None = None
    poll_interval_seconds: float = 0.5
    drain_timeout_seconds: float = 30.0
    request_timeout_seconds: float = 30.0
    retries: int = 3
    retry_backoff_seconds: float = 0.25
    retry_backoff_max_seconds: float = 5.0
    max_claims_per_second: float | None = None

    def __post_init__(self):
        if self.num_workers < 1:
            raise ModelingError(
                f"num_workers must be >= 1, got {self.num_workers}"
            )
        if self.lease_seconds <= 0:
            raise ModelingError(
                f"lease_seconds must be > 0, got {self.lease_seconds}"
            )
        if self.heartbeat_interval_seconds is not None \
                and self.heartbeat_interval_seconds <= 0:
            raise ModelingError(
                f"heartbeat_interval_seconds must be > 0, got "
                f"{self.heartbeat_interval_seconds}"
            )
        if self.poll_interval_seconds <= 0:
            raise ModelingError(
                f"poll_interval_seconds must be > 0, got "
                f"{self.poll_interval_seconds}"
            )
        if self.drain_timeout_seconds < 0:
            raise ModelingError(
                f"drain_timeout_seconds must be >= 0, got "
                f"{self.drain_timeout_seconds}"
            )
        if self.request_timeout_seconds <= 0:
            raise ModelingError(
                f"request_timeout_seconds must be > 0, got "
                f"{self.request_timeout_seconds}"
            )
        if self.retries < 0:
            raise ModelingError(
                f"retries must be >= 0, got {self.retries}"
            )
        if self.retry_backoff_seconds < 0:
            raise ModelingError(
                f"retry_backoff_seconds must be >= 0, got "
                f"{self.retry_backoff_seconds}"
            )
        if self.retry_backoff_max_seconds < self.retry_backoff_seconds:
            raise ModelingError(
                f"retry_backoff_max_seconds must be >= "
                f"retry_backoff_seconds, got "
                f"{self.retry_backoff_max_seconds}"
            )
        if self.max_claims_per_second is not None \
                and self.max_claims_per_second <= 0:
            raise ModelingError(
                f"max_claims_per_second must be > 0, got "
                f"{self.max_claims_per_second}"
            )

    def resolved_heartbeat_interval(self) -> float:
        """The effective heartbeat period (defaults to a third of the
        lease, so a lease survives two missed beats)."""
        if self.heartbeat_interval_seconds is not None:
            return self.heartbeat_interval_seconds
        return self.lease_seconds / 3.0


@dataclass
class ServiceConfig:
    """Knobs for the persistent analysis service (:mod:`repro.service`).

    Attributes:
        host / port: HTTP bind address.  ``port=0`` binds an ephemeral
            port (the chosen one lands in the workdir's ``service.json``
            state file), which is what tests and the smoke CI use.
        num_workers: Scheduler worker threads draining the job queue.
        local_workers: Whether to run that local pool at all.  ``False``
            (``serve --no-local-workers``) turns the service into a pure
            coordinator: it accepts submissions, runs the reaper and
            supervision loops, and leaves execution entirely to remote
            ``repro worker`` agents claiming over HTTP.
        poll_interval_seconds: How long an idle worker waits before
            re-polling the queue for work.
        max_queue_depth: Admission control: submissions that would push
            the number of queued+running jobs past this are shed with
            HTTP 429 + ``Retry-After`` instead of being accepted and
            dropped later.
        max_inflight_per_client: Admission control: cap on one client's
            queued+running jobs (clients identify via the ``X-Client``
            header; unidentified traffic shares one bucket).
        retry_after_seconds: Floor for the ``Retry-After`` hint on shed
            responses; the actual hint scales with queue depth and the
            observed per-job service time when history exists.
        result_ttl_seconds: Evict cached results older than this
            (``None`` = keep forever).
        result_max_bytes: Cap the result store's on-disk size; the
            oldest-mtime entries are evicted first (``None`` = no cap).
            Entries referenced by live (queued/running) jobs are never
            evicted by either rule.
        eviction_interval_seconds: How often the background eviction
            pass runs (only when a TTL or size cap is configured).
        drain_timeout_seconds: How long ``stop(drain=True)`` waits for
            in-flight jobs before giving up the join (the jobs stay
            ``running`` and are recovered to ``queued`` on restart).
        isolate_jobs: Run each claimed job in a worker *process* (the
            executor's pooled path), so a crashing or wedged solve
            cannot take the service down and per-job wall timeouts
            apply.  ``False`` runs jobs in the scheduler thread --
            faster to start, used by tests.
        max_body_bytes: Reject request bodies larger than this with
            HTTP 413 *before* reading them -- an advertised
            ``Content-Length`` is not an invitation to buffer it.
        supervision: The self-healing policy: job leases + heartbeats,
            the reaper that requeues expired leases, and poison-job
            quarantine (:class:`SupervisionConfig`).
        distrib: The distributed-fleet policy (remote claim protocol
            knobs; the coordinator consults
            ``distrib.max_claims_per_second`` for claim shedding).
    """

    host: str = "127.0.0.1"
    port: int = 8080
    num_workers: int = 2
    local_workers: bool = True
    poll_interval_seconds: float = 0.2
    max_queue_depth: int = 1024
    max_inflight_per_client: int = 64
    retry_after_seconds: float = 5.0
    result_ttl_seconds: float | None = None
    result_max_bytes: int | None = None
    eviction_interval_seconds: float = 60.0
    drain_timeout_seconds: float = 30.0
    isolate_jobs: bool = True
    max_body_bytes: int = 64 * 1024 * 1024
    supervision: SupervisionConfig = field(
        default_factory=SupervisionConfig)
    distrib: DistribConfig = field(default_factory=DistribConfig)

    def __post_init__(self):
        if self.num_workers < 1:
            raise ModelingError(
                f"num_workers must be >= 1, got {self.num_workers}"
            )
        if self.max_body_bytes < 1:
            raise ModelingError(
                f"max_body_bytes must be >= 1, got {self.max_body_bytes}"
            )
        if self.poll_interval_seconds <= 0:
            raise ModelingError(
                f"poll_interval_seconds must be > 0, got "
                f"{self.poll_interval_seconds}"
            )
        if self.max_queue_depth < 0:
            raise ModelingError(
                f"max_queue_depth must be >= 0, got {self.max_queue_depth}"
            )
        if self.max_inflight_per_client < 1:
            raise ModelingError(
                f"max_inflight_per_client must be >= 1, got "
                f"{self.max_inflight_per_client}"
            )
        if self.retry_after_seconds < 0:
            raise ModelingError(
                f"retry_after_seconds must be >= 0, got "
                f"{self.retry_after_seconds}"
            )
        if self.result_ttl_seconds is not None \
                and self.result_ttl_seconds <= 0:
            raise ModelingError(
                f"result_ttl_seconds must be > 0, got "
                f"{self.result_ttl_seconds}"
            )
        if self.result_max_bytes is not None and self.result_max_bytes < 0:
            raise ModelingError(
                f"result_max_bytes must be >= 0, got {self.result_max_bytes}"
            )
        if self.eviction_interval_seconds <= 0:
            raise ModelingError(
                f"eviction_interval_seconds must be > 0, got "
                f"{self.eviction_interval_seconds}"
            )
        if self.drain_timeout_seconds < 0:
            raise ModelingError(
                f"drain_timeout_seconds must be >= 0, got "
                f"{self.drain_timeout_seconds}"
            )


@dataclass
class ResilienceConfig:
    """Graceful-degradation policy for a single analysis.

    Governs the analyzer's *solver fallback ladder* when a MILP hits its
    time limit without ever finding an incumbent (so there is no usable
    bound at all):

    1. retry the solve with an escalated ``time_limit``
       (``x time_limit_escalation``, up to ``max_escalations`` rungs);
    2. if every rung expires incumbent-free and ``allow_partial`` is
       set, solve the LP *relaxation* of the MILP and report its
       objective as a structured
       :class:`~repro.core.degradation.PartialResult` -- a provably
       valid (if loose) bound on the worst-case degradation -- instead
       of raising :class:`~repro.exceptions.SolverError`;
    3. without ``allow_partial``, raise as before.

    Attributes:
        allow_partial: Return a :class:`PartialResult` carrying the
            LP-relaxation bound instead of raising when the ladder is
            exhausted.  Off by default: partial answers must be opted
            into (``analyze --allow-partial`` on the CLI).
        time_limit_escalation: Multiplier applied to ``time_limit`` per
            escalation rung (``> 1``).
        max_escalations: Escalated re-solves to attempt before falling
            through to the relaxation (``0`` disables escalation).
        relaxation_time_limit: Solver budget for the LP-relaxation
            solve; ``None`` reuses the last escalated limit.
    """

    allow_partial: bool = False
    time_limit_escalation: float = 2.0
    max_escalations: int = 1
    relaxation_time_limit: float | None = None

    def __post_init__(self):
        if self.time_limit_escalation <= 1.0:
            raise ModelingError(
                f"time_limit_escalation must be > 1, got "
                f"{self.time_limit_escalation}"
            )
        if self.max_escalations < 0:
            raise ModelingError(
                f"max_escalations must be >= 0, got {self.max_escalations}"
            )
        if self.relaxation_time_limit is not None \
                and self.relaxation_time_limit <= 0:
            raise ModelingError(
                f"relaxation_time_limit must be > 0, got "
                f"{self.relaxation_time_limit}"
            )

    def escalated_limits(self, time_limit: float | None) -> list[float]:
        """The ladder of escalated time limits to try after a failure."""
        if time_limit is None:
            return []
        return [
            time_limit * self.time_limit_escalation ** i
            for i in range(1, self.max_escalations + 1)
        ]


@dataclass
class ObsConfig:
    """Observability knobs: structured tracing (:mod:`repro.obs`).

    Tracing defaults to *off*: the ambient tracer stays the no-op
    :data:`~repro.obs.trace.NULL_TRACER` and instrumented hot paths pay
    one function call per phase.  Setting ``trace_path`` (the CLI's
    ``--trace FILE``) enables it implicitly.

    Attributes:
        trace_path: Write the completed trace (spans + a final metrics
            snapshot) to this JSONL file; ``None`` disables the sink.
        enabled: Collect spans even without a file sink (programmatic
            callers reading ``Tracer.export()`` directly).  Forced on
            when ``trace_path`` is set.
        trace_name: The ``name`` stamped into the trace-file header.
    """

    trace_path: str | None = None
    enabled: bool = False
    trace_name: str = "trace"

    def __post_init__(self):
        if self.trace_path is not None:
            self.enabled = True


@dataclass
class RahaConfig:
    """All analysis knobs in one place.

    Exactly one of ``fixed_demands`` / ``demand_bounds`` must be set:

    * ``fixed_demands`` -- the fast mode (Section 6): the healthy
      network's optimum is a constant, Raha only searches failures.
    * ``demand_bounds`` -- the joint mode: per-pair ``(lower, upper)``
      intervals the adversary may choose demands from (build them with
      :func:`repro.network.demand.demand_envelope`).  Upper bounds must be
      finite (they double as big-M values).

    Attributes:
        objective: ``"total_flow"`` (Eq. 2, default), ``"mlu"`` or
            ``"maxmin"`` (Appendix A).
        probability_threshold: Only consider failure scenarios at least
            this likely (``T``); requires link failure probabilities.
            ``None`` disables the constraint (any failure combination).
        max_failures: Only consider scenarios with at most this many
            failed links (the prior-work ``k``); ``None`` = unlimited.
        connected_enforced: Forbid scenarios that take down every path of
            some demand (Section 5.1's CE constraint; forced on for MLU).
        naive_failover: Model the naive fail-over reaction (Section 5.1):
            the r-th backup's flow may not exceed the healthy flow of the
            r-th primary (only meaningful in joint mode with the
            total-flow objective).
        exact_path_down: Add the tightening ``u_kp <= sum u_e`` so a path
            is marked down *iff* one of its LAGs is down.  The paper's
            Eq. 4 only forces the "if" direction (sound because a
            spuriously-down path never helps the adversary); the exact
            form keeps reported scenarios canonical.
        time_limit: Solver budget in seconds (MetaOpt's ``timeout``).
        mip_rel_gap: Optional relative MIP gap.
        minimize_performance: Optimize the *naive* objective of prior work
            (QARC [38] / Robust [9], Figure 3's baselines): minimize the
            failed network's performance instead of maximizing the gap to
            the design point.  The healthy value and degradation are then
            computed post hoc for the found (demand, scenario).  Only
            supported with the total-flow objective.
        verify: Re-solve the inner problems at the found solution and
            error out on mismatch (recommended; costs two LP solves).
        maxmin_bins / maxmin_alpha: Binner shape for
            ``objective="maxmin"``.
        maxmin_binner: ``"geometric"`` (default) or ``"equidepth"`` --
            the two single-shot max-min approximations the paper names
            (Section 3 / Appendix A).
        resilience: Graceful-degradation policy
            (:class:`ResilienceConfig`): the solver fallback ladder and
            whether an exhausted ladder may return a
            :class:`~repro.core.degradation.PartialResult`.
    """

    objective: str = "total_flow"
    fixed_demands: Mapping[Pair, float] | None = None
    demand_bounds: Mapping[Pair, tuple[float, float]] | None = None
    probability_threshold: float | None = None
    max_failures: int | None = None
    connected_enforced: bool = False
    naive_failover: bool = False
    exact_path_down: bool = True
    minimize_performance: bool = False
    time_limit: float | None = 1000.0
    mip_rel_gap: float | None = None
    verify: bool = True
    maxmin_bins: int = 5
    maxmin_alpha: float = 2.0
    maxmin_binner: str = "geometric"
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)
    extra_outer_constraints: list = field(default_factory=list)
    #: Callbacks ``(model, encoding, demand_exprs) -> None`` invoked after
    #: the failure encoding is built; they may post arbitrary linear
    #: constraints on the outer variables (Section 5.1: "we discuss
    #: example constraints but users can add others").  See
    #: tests/core/test_custom_constraints.py for examples.
    constraint_builders: list = field(default_factory=list)

    def __post_init__(self):
        if self.resilience is None:
            self.resilience = ResilienceConfig()
        if self.objective not in OBJECTIVES:
            raise ModelingError(
                f"unknown objective {self.objective!r}; pick from {OBJECTIVES}"
            )
        has_fixed = self.fixed_demands is not None
        has_bounds = self.demand_bounds is not None
        if has_fixed == has_bounds:
            raise ModelingError(
                "set exactly one of fixed_demands / demand_bounds"
            )
        if has_bounds:
            for pair, (lo, hi) in self.demand_bounds.items():
                if not (0 <= lo <= hi):
                    raise ModelingError(
                        f"demand bounds for {pair} must satisfy 0 <= lo <= hi, "
                        f"got ({lo}, {hi})"
                    )
                if hi == float("inf"):
                    raise ModelingError(
                        f"demand upper bound for {pair} must be finite (it is "
                        "also the big-M of the backup-activation product)"
                    )
        if has_fixed:
            for pair, volume in self.fixed_demands.items():
                if volume < 0:
                    raise ModelingError(f"negative fixed demand for {pair}")
        if self.probability_threshold is not None and not (
            0.0 < self.probability_threshold < 1.0
        ):
            raise ModelingError(
                f"probability threshold must be in (0, 1), got "
                f"{self.probability_threshold}"
            )
        if self.max_failures is not None and self.max_failures < 0:
            raise ModelingError(
                f"max_failures must be nonnegative, got {self.max_failures}"
            )
        if self.naive_failover and self.fixed_demands is not None:
            # With fixed demands the healthy solve happens outside the
            # MILP, so there is no healthy flow variable to couple to.
            raise ModelingError(
                "naive_failover requires the joint (demand_bounds) mode"
            )
        if self.maxmin_binner not in ("geometric", "equidepth"):
            raise ModelingError(
                f"unknown maxmin binner {self.maxmin_binner!r}"
            )
        if self.minimize_performance and self.objective != "total_flow":
            raise ModelingError(
                "minimize_performance is only supported with total_flow"
            )
        if self.objective == "mlu" and not self.connected_enforced:
            # Appendix A: MLU models are infeasible under disconnection.
            self.connected_enforced = True

    @property
    def pairs(self) -> list[Pair]:
        """The demand pairs this analysis covers."""
        source = self.fixed_demands if self.fixed_demands is not None \
            else self.demand_bounds
        return list(source.keys())

    def demand_upper(self, pair: Pair) -> float:
        """Finite upper bound on a pair's demand (fixed value or interval)."""
        if self.fixed_demands is not None:
            return float(self.fixed_demands[pair])
        return float(self.demand_bounds[pair][1])
