"""The Raha analyzer: find the worst probable degradation of a WAN.

:class:`RahaAnalyzer` assembles the Stackelberg game of Section 4.1:

* the **outer** adversary controls demands (in joint mode) and per-link
  failure binaries, under the Section 5.1 constraints;
* **inner problem 1** is the healthy network's TE optimization over
  primary paths (the design point) -- aligned, embedded as a primal (or
  pre-solved to a constant in fixed-demand mode, Section 6);
* **inner problem 2** is the failed network's TE optimization with
  variable LAG capacities and path-extension capacities (Section 5) --
  adversarial, pinned by KKT conditions.

Every solve is followed (by default) by two independent checks:

1. the KKT embedding is verified by re-solving the inner LP at the found
   outer assignment (:meth:`StackelbergProblem.verify`);
2. the extracted (demand, scenario) pair is *simulated* through the plain
   TE code path (:func:`repro.failures.scenario.simulate_failed_network`)
   and the simulated degradation must match the MILP's.

A Raha result therefore never rests on the MILP encoding alone.
"""

from __future__ import annotations

import time
from collections import defaultdict

from repro.core.config import RahaConfig
from repro.core.degradation import DegradationResult, PartialResult
from repro.core.encodings import (
    FailureEncoding,
    add_naive_failover_constraints,
    build_path_extension_caps,
)
from repro.exceptions import ModelingError, SolverError, VerificationError
from repro.failures.probability import scenario_probability
from repro.failures.scenario import (
    FailureScenario,
    active_paths,
    path_is_down,
    simulate_failed_network,
)
from repro.metaopt.bilevel import StackelbergProblem
from repro.network.demand import DemandMatrix, Pair
from repro.network.topology import LagKey, Topology, lag_key
from repro.obs.metrics import metrics
from repro.obs.trace import current_tracer
from repro.paths.pathset import PathSet
from repro.solver.duality import InnerLP
from repro.solver.expr import quicksum
from repro.solver.result import SolveResult, SolveStatus
from repro.te.maxmin import GeometricBinnerTE
from repro.te.mlu import MluTE
from repro.te.total_flow import TotalFlowTE


class RahaAnalyzer:
    """Analyze worst-case degradation of a traffic-engineered WAN.

    Args:
        topology: The WAN (LAGs of links, optionally with probabilities).
        paths: Configured primary/backup paths per demand pair; compute
            with :meth:`repro.paths.PathSet.k_shortest` if the operator
            has no path input (the paper's default).
        config: Analysis knobs (:class:`repro.core.config.RahaConfig`).
        non_failable_lags: LAGs whose links the failure search must keep
            up (virtual gateway LAGs, freshly augmented capacity that is
            assumed not to fail, ...).

    Example:
        >>> from repro.network.builder import motivating_example
        >>> from repro.network.demand import demand_envelope
        >>> topo = motivating_example()
        >>> paths = PathSet.k_shortest(
        ...     topo, [("B", "D"), ("C", "D")], num_primary=1, num_backup=1)
        >>> config = RahaConfig(
        ...     demand_bounds={("B", "D"): (0, 18), ("C", "D"): (0, 15)},
        ...     max_failures=1)
        >>> result = RahaAnalyzer(topo, paths, config).analyze()
        >>> round(result.degradation, 3) > 0
        True
    """

    def __init__(
        self,
        topology: Topology,
        paths: PathSet,
        config: RahaConfig,
        non_failable_lags=(),
    ):
        self.topology = topology
        self.paths = paths
        self.config = config
        self.non_failable_lags = frozenset(
            lag_key(*k) for k in non_failable_lags
        )
        self._validate()

    def _validate(self) -> None:
        self.paths.validate_against(self.topology)
        for pair in self.config.pairs:
            if pair not in self.paths:
                raise ModelingError(f"demand {pair} has no configured paths")
        if self.config.probability_threshold is not None:
            # At least one failable link must carry a probability,
            # otherwise the analysis is vacuous.
            if not any(
                link.failure_probability is not None
                for lag in self.topology.lags
                for link in lag.links
            ):
                raise ModelingError(
                    "probability_threshold requires link failure "
                    "probabilities (see assign_zoo_probabilities)"
                )

    # -- public API ----------------------------------------------------------
    def analyze(self) -> DegradationResult:
        """Build the game, solve it, verify, and report the worst case."""
        with current_tracer().span(
            "analyze", objective=self.config.objective
        ) as root:
            result = self._analyze(root)
        return result

    def _analyze(self, root) -> DegradationResult:
        encode_started = time.monotonic()
        game = StackelbergProblem(f"raha-{self.config.objective}")
        model = game.model

        demand_exprs, demand_uppers = self._demand_variables(model)
        encoding = FailureEncoding(
            model=model,
            topology=self.topology,
            paths=self.paths,
            config=self.config,
            non_failable_lags=self.non_failable_lags,
        )
        with current_tracer().span("linearize"):
            caps = build_path_extension_caps(
                model, encoding, demand_exprs, demand_uppers,
                kill_down_paths=(self.config.objective == "mlu"),
            )
        for constraint in self.config.extra_outer_constraints:
            model.add_constr(constraint)
        for builder in self.config.constraint_builders:
            builder(model, encoding, demand_exprs)

        builder = {
            "total_flow": self._build_total_flow,
            "mlu": self._build_mlu,
            "maxmin": self._build_maxmin,
        }[self.config.objective]
        with current_tracer().span("build_healthy"):
            context = builder(
                game, encoding, caps, demand_exprs, demand_uppers
            )
        encode_seconds = time.monotonic() - encode_started

        result = game.solve(
            time_limit=self.config.time_limit,
            mip_rel_gap=self.config.mip_rel_gap,
        )
        if result.status is SolveStatus.TIME_LIMIT and not result.has_solution:
            # A timeout that never found an incumbent carries no usable
            # answer (objective NaN) -- walk the fallback ladder: retry
            # with escalated limits, then (if allowed) fall back to an
            # LP-relaxation bound as a structured PartialResult.
            metrics().counter("analyzer.incumbent_free_timeouts").inc()
            recovered = self._recover_from_timeout(game, result,
                                                   encode_seconds)
            if isinstance(recovered, PartialResult):
                metrics().counter("analyzer.partial_results").inc()
                root.set(partial=True, bound=recovered.bound)
                return recovered
            result = recovered
        if not result.status.ok or result.x is None:
            raise SolverError(
                f"Raha MILP ended with {result.status.value}: {result.message}"
            )

        final = self._finalize(
            game, encoding, demand_exprs, context, result, encode_seconds
        )
        root.set(
            degradation=final.degradation, status=final.status,
            encode_seconds=encode_seconds,
        )
        return final

    def _recover_from_timeout(self, game, result: SolveResult,
                              encode_seconds: float):
        """The solver fallback ladder for incumbent-free time limits.

        Rungs, in order (:class:`repro.core.config.ResilienceConfig`):

        1. Re-solve with escalated time limits
           (``time_limit * escalation**i``, ``max_escalations`` times) --
           many instances just need a little more branch-and-bound.
        2. With ``allow_partial=True``: solve the LP relaxation and
           return its optimum as a :class:`PartialResult` bound -- the
           relaxation can only over-estimate a maximization MILP, so
           "degradation cannot exceed this" remains sound.
        3. Otherwise raise :class:`SolverError` naming the configured
           limit, exactly as before the ladder existed.

        Returns:
            A usable :class:`~repro.solver.result.SolveResult` (rung 1)
            or a :class:`PartialResult` (rung 2).
        """
        resilience = self.config.resilience
        tried = [self.config.time_limit]
        provenance = [
            f"MILP hit the {self.config.time_limit}s time limit with no "
            f"incumbent"
        ]
        solver_seconds = result.solve_seconds
        for limit in resilience.escalated_limits(self.config.time_limit):
            tried.append(limit)
            metrics().counter("analyzer.escalated_retries").inc()
            with current_tracer().span("retry_escalated", time_limit=limit):
                retry = game.solve(time_limit=limit,
                                   mip_rel_gap=self.config.mip_rel_gap)
            solver_seconds += retry.solve_seconds
            if not (retry.status is SolveStatus.TIME_LIMIT
                    and not retry.has_solution):
                return retry
            provenance.append(
                f"retry with escalated {limit:g}s time limit: still no "
                f"incumbent"
            )
        if not resilience.allow_partial:
            retries = (
                f" (and after {len(tried) - 1} escalated "
                f"retr{'y' if len(tried) == 2 else 'ies'} up to "
                f"{tried[-1]:g}s)" if len(tried) > 1 else ""
            )
            raise SolverError(
                f"Raha MILP hit the {self.config.time_limit}s time limit "
                f"with no incumbent solution{retries}; raise time_limit, "
                f"relax mip_rel_gap, or enable resilience.allow_partial "
                f"for an LP-relaxation bound ({result.message})"
            )
        with current_tracer().span("lp_relaxation_fallback"):
            relaxed = game.solve(time_limit=resilience.relaxation_time_limit,
                                 relax=True)
        solver_seconds += relaxed.solve_seconds
        if not relaxed.status.ok or relaxed.x is None:
            raise SolverError(
                f"Raha MILP hit the {self.config.time_limit}s time limit "
                f"with no incumbent solution, and the LP-relaxation "
                f"fallback ended with {relaxed.status.value}: "
                f"{relaxed.message}"
            )
        provenance.append(
            f"LP relaxation solved ({relaxed.status.value}): its optimum "
            f"is a valid upper bound on the MILP degradation objective"
        )
        if self.config.minimize_performance:
            provenance.append(
                "minimize_performance mode: the bound applies to the raw "
                "objective (negated failed-network performance)"
            )
        bound = float(relaxed.objective)
        normalizer = (
            self.topology.average_lag_capacity()
            if self.config.objective != "mlu" else 1.0
        )
        return PartialResult(
            bound=bound,
            normalized_bound=bound / normalizer,
            objective=self.config.objective,
            provenance=provenance,
            time_limits_tried=tried,
            solve_seconds=solver_seconds,
            encode_seconds=encode_seconds,
            solver_stats=relaxed.stats.to_dict() if relaxed.stats else None,
        )

    # -- demands ----------------------------------------------------------------
    def _demand_variables(self, model):
        """Demand per pair: a leader Var in joint mode, a float otherwise."""
        exprs: dict[Pair, object] = {}
        uppers: dict[Pair, float] = {}
        if self.config.fixed_demands is not None:
            for pair, volume in self.config.fixed_demands.items():
                exprs[pair] = float(volume)
                uppers[pair] = float(volume)
        else:
            for pair, (lo, hi) in self.config.demand_bounds.items():
                exprs[pair] = model.add_var(lb=lo, ub=hi, name=f"d[{pair}]")
                uppers[pair] = float(hi)
        return exprs, uppers

    # -- total-flow objective (Section 5) ------------------------------------------
    def _build_total_flow(self, game, encoding, caps, demand_exprs,
                          demand_uppers):
        fixed = self.config.fixed_demands is not None
        healthy_const = None
        healthy_inner = None
        g_vars: dict[tuple[Pair, int], object] = {}

        if self.config.minimize_performance:
            # The naive prior-work objective: ignore the design point,
            # just minimize the failed network's performance.  The
            # healthy value is reconstructed post hoc in _finalize.
            pass
        elif fixed:
            healthy = TotalFlowTE(primary_only=True).solve(
                self.topology, self.config.fixed_demands, self.paths
            )
            if not healthy.feasible:
                raise SolverError("healthy-network TE is infeasible")
            healthy_const = healthy.total_flow
        else:
            healthy_inner = game.aligned_inner("healthy", sense="max")
            self._add_flow_lp(
                healthy_inner, demand_exprs, demand_uppers,
                primaries_only=True, lag_capacity=None, caps=None,
                flow_vars=g_vars,
            )

        failed_inner = game.adversarial_inner("failed", sense="max")
        f_vars: dict[tuple[Pair, int], object] = {}
        self._add_flow_lp(
            failed_inner, demand_exprs, demand_uppers,
            primaries_only=False, lag_capacity=encoding.lag_capacity,
            caps=caps, flow_vars=f_vars,
        )
        if self.config.naive_failover:
            add_naive_failover_constraints(
                game.model, self.paths, g_vars, f_vars
            )

        if self.config.minimize_performance:
            game.set_objective_terms([(failed_inner, -1.0)])
        elif fixed:
            game.set_objective_terms([(failed_inner, -1.0)],
                                     extra=healthy_const)
        else:
            game.set_gap_objective(healthy_inner, failed_inner)
        return {
            "healthy_inner": healthy_inner,
            "failed_inner": failed_inner,
            "healthy_const": healthy_const,
        }

    def _add_flow_lp(self, inner: InnerLP, demand_exprs, demand_uppers,
                     primaries_only: bool, lag_capacity, caps, flow_vars):
        """Eq. 2 with either constant or variable capacities.

        Dual bounds of 1 are *provably valid* here: the constraint matrix
        over the inner flow variables is 0/1 and every objective
        coefficient is 1, so at any dual vertex each positive dual solves
        a subsystem of "sum of nonnegatives = 1" equations and is <= 1.
        """
        topo = self.topology
        per_lag: dict[LagKey, list] = defaultdict(list)
        for pair in self.config.pairs:
            dp = self.paths[pair]
            count = dp.num_primary if primaries_only else len(dp.paths)
            d_hi = demand_uppers[pair]
            terms = []
            for j in range(count):
                var = inner.add_var(
                    obj_coef=1.0, value_bound=d_hi,
                    name=f"{inner.name}:f[{pair}][{j}]",
                )
                flow_vars[(pair, j)] = var
                terms.append(var)
                for lag in topo.lags_on_path(dp.paths[j]):
                    per_lag[lag.key].append(var)
                if caps is not None:
                    cap = caps.get((pair, j))
                    if cap is not None:
                        inner.add_constr(
                            var <= cap, dual_bound=1.0, slack_bound=d_hi,
                            name=f"{inner.name}:gate[{pair}][{j}]",
                        )
            inner.add_constr(
                quicksum(terms) <= demand_exprs[pair],
                dual_bound=1.0, slack_bound=d_hi,
                name=f"{inner.name}:dem[{pair}]",
            )
        for key, vars_on_lag in per_lag.items():
            healthy_cap = topo.require_lag(*key).capacity
            rhs = lag_capacity[key] if lag_capacity is not None else healthy_cap
            inner.add_constr(
                quicksum(vars_on_lag) <= rhs,
                dual_bound=1.0, slack_bound=healthy_cap,
                name=f"{inner.name}:cap[{key}]",
            )

    # -- MLU objective (Appendix A) -------------------------------------------------
    def _mlu_bounds(self, demand_uppers):
        total_demand = sum(demand_uppers.values())
        caps = [lag.capacity for lag in self.topology.lags if lag.capacity > 0]
        min_cap = min(caps) if caps else 1.0
        u_max = total_demand / min_cap + 1.0
        dual_eq = 2.0 * (1.0 + sum(1.0 / c for c in caps))
        return u_max, dual_eq

    def _build_mlu(self, game, encoding, caps, demand_exprs, demand_uppers):
        fixed = self.config.fixed_demands is not None
        u_max, dual_eq = self._mlu_bounds(demand_uppers)
        healthy_const = None
        healthy_inner = None

        if fixed:
            healthy = MluTE(primary_only=True).solve(
                self.topology, self.config.fixed_demands, self.paths
            )
            if not healthy.feasible:
                raise SolverError("healthy MLU is infeasible (disconnected?)")
            healthy_const = healthy.objective
        else:
            healthy_inner = game.aligned_inner("healthy", sense="min")
            self._add_mlu_lp(
                healthy_inner, demand_exprs, demand_uppers,
                primaries_only=True, caps=None, u_max=u_max, dual_eq=dual_eq,
            )

        failed_inner = game.adversarial_inner("failed", sense="min")
        self._add_mlu_lp(
            failed_inner, demand_exprs, demand_uppers,
            primaries_only=False, caps=caps, u_max=u_max, dual_eq=dual_eq,
        )

        if fixed:
            game.set_objective_terms([(failed_inner, 1.0)],
                                     extra=-healthy_const)
        else:
            game.set_gap_objective(healthy_inner, failed_inner)
        return {
            "healthy_inner": healthy_inner,
            "failed_inner": failed_inner,
            "healthy_const": healthy_const,
        }

    def _add_mlu_lp(self, inner: InnerLP, demand_exprs, demand_uppers,
                    primaries_only: bool, caps, u_max, dual_eq):
        """Appendix A's MLU model.

        Capacity constraints use the *original* capacities against ``U``;
        failures act purely through the path-extension capacities (which
        here also kill down paths).  Dual bounds: the stationarity of
        ``U`` forces ``sum_e C_e mu_e = 1`` whenever ``U > 0``, giving
        ``mu_e <= 1/C_e``; equality and gating duals are bounded by the
        generous ``dual_eq`` (post-solve verification guards the choice).
        """
        topo = self.topology
        u_var = inner.add_var(obj_coef=1.0, value_bound=u_max,
                              name=f"{inner.name}:U")
        per_lag: dict[LagKey, list] = defaultdict(list)
        for pair in self.config.pairs:
            dp = self.paths[pair]
            count = dp.num_primary if primaries_only else len(dp.paths)
            d_hi = demand_uppers[pair]
            terms = []
            for j in range(count):
                var = inner.add_var(
                    obj_coef=0.0, value_bound=d_hi,
                    name=f"{inner.name}:f[{pair}][{j}]",
                )
                terms.append(var)
                for lag in topo.lags_on_path(dp.paths[j]):
                    per_lag[lag.key].append(var)
                if caps is not None:
                    cap = caps.get((pair, j))
                    if cap is not None:
                        inner.add_constr(
                            var <= cap, dual_bound=dual_eq,
                            slack_bound=d_hi,
                            name=f"{inner.name}:gate[{pair}][{j}]",
                        )
            # MLU requires demands be fully routed.
            inner.add_constr(
                quicksum(terms) == demand_exprs[pair],
                dual_bound=dual_eq,
                name=f"{inner.name}:dem[{pair}]",
            )
        for key, vars_on_lag in per_lag.items():
            capacity = topo.require_lag(*key).capacity
            if capacity <= 0:
                inner.add_constr(
                    quicksum(vars_on_lag) <= 0.0, dual_bound=dual_eq,
                    slack_bound=1.0, name=f"{inner.name}:zero[{key}]",
                )
                continue
            inner.add_constr(
                quicksum(vars_on_lag) - capacity * u_var <= 0,
                dual_bound=2.0 / capacity,
                slack_bound=capacity * u_max,
                name=f"{inner.name}:util[{key}]",
            )

    # -- max-min objective (Appendix A) ------------------------------------------------
    def _binner(self, demand_uppers) -> GeometricBinnerTE:
        from repro.te.maxmin import EquiDepthBinnerTE

        max_demand = max(demand_uppers.values()) if demand_uppers else 1.0
        binner_cls = (
            EquiDepthBinnerTE if self.config.maxmin_binner == "equidepth"
            else GeometricBinnerTE
        )
        binner = binner_cls(
            num_bins=self.config.maxmin_bins,
            alpha=self.config.maxmin_alpha,
        )
        # Pin t0 so the MILP and the verification binner agree exactly.
        binner.t0 = max(max_demand, 1e-9) / (
            binner.alpha ** (binner.num_bins - 1)
        )
        return binner

    def _build_maxmin(self, game, encoding, caps, demand_exprs,
                      demand_uppers):
        fixed = self.config.fixed_demands is not None
        binner = self._binner(demand_uppers)
        healthy_const = None
        healthy_inner = None

        if fixed:
            healthy = binner.solve(
                self.topology, self.config.fixed_demands, self.paths
            )
            if not healthy.feasible:
                raise SolverError("healthy max-min TE is infeasible")
            healthy_const = healthy.objective
        else:
            healthy_inner = game.aligned_inner("healthy", sense="max")
            self._add_binner_lp(
                healthy_inner, binner, demand_exprs, demand_uppers,
                primaries_only=True, lag_capacity=None, caps=None,
            )

        failed_inner = game.adversarial_inner("failed", sense="max")
        self._add_binner_lp(
            failed_inner, binner, demand_exprs, demand_uppers,
            primaries_only=False, lag_capacity=encoding.lag_capacity,
            caps=caps,
        )

        if fixed:
            game.set_objective_terms([(failed_inner, -1.0)],
                                     extra=healthy_const)
        else:
            game.set_gap_objective(healthy_inner, failed_inner)
        return {
            "healthy_inner": healthy_inner,
            "failed_inner": failed_inner,
            "healthy_const": healthy_const,
            "binner": binner,
        }

    def _add_binner_lp(self, inner: InnerLP, binner, demand_exprs,
                       demand_uppers, primaries_only, lag_capacity, caps):
        """The geometric binner LP with (possibly variable) capacities."""
        topo = self.topology
        max_demand = max(demand_uppers.values()) if demand_uppers else 1.0
        widths = binner.bin_widths(max_demand)
        weights = [binner.alpha ** (-i) for i in range(binner.num_bins)]
        per_lag: dict[LagKey, list] = defaultdict(list)
        for pair in self.config.pairs:
            dp = self.paths[pair]
            count = dp.num_primary if primaries_only else len(dp.paths)
            d_hi = demand_uppers[pair]
            terms = []
            for j in range(count):
                var = inner.add_var(
                    obj_coef=0.0, value_bound=d_hi,
                    name=f"{inner.name}:f[{pair}][{j}]",
                )
                terms.append(var)
                for lag in topo.lags_on_path(dp.paths[j]):
                    per_lag[lag.key].append(var)
                if caps is not None:
                    cap = caps.get((pair, j))
                    if cap is not None:
                        inner.add_constr(
                            var <= cap, dual_bound=2.0, slack_bound=d_hi,
                            name=f"{inner.name}:gate[{pair}][{j}]",
                        )
            bins = []
            for i, width in enumerate(widths):
                b = inner.add_var(
                    obj_coef=weights[i], value_bound=width,
                    name=f"{inner.name}:b[{pair}][{i}]",
                )
                bins.append(b)
                inner.add_constr(
                    b <= width, dual_bound=2.0, slack_bound=width,
                    name=f"{inner.name}:bw[{pair}][{i}]",
                )
            inner.add_constr(
                quicksum(terms) == quicksum(bins), dual_bound=2.0,
                name=f"{inner.name}:split[{pair}]",
            )
            inner.add_constr(
                quicksum(terms) <= demand_exprs[pair],
                dual_bound=2.0, slack_bound=d_hi,
                name=f"{inner.name}:dem[{pair}]",
            )
        for key, vars_on_lag in per_lag.items():
            healthy_cap = topo.require_lag(*key).capacity
            rhs = lag_capacity[key] if lag_capacity is not None else healthy_cap
            inner.add_constr(
                quicksum(vars_on_lag) <= rhs, dual_bound=2.0,
                slack_bound=healthy_cap, name=f"{inner.name}:cap[{key}]",
            )

    # -- finalize -----------------------------------------------------------------
    def _finalize(self, game, encoding, demand_exprs, context,
                  result: SolveResult, encode_seconds) -> DegradationResult:
        scenario = encoding.extract_scenario(result)
        demands = DemandMatrix()
        for pair, expr in demand_exprs.items():
            demands[pair] = (
                float(expr) if isinstance(expr, float) else result.value(expr)
            )

        healthy_inner = context["healthy_inner"]
        failed_inner = context["failed_inner"]
        if healthy_inner is not None:
            healthy_value = result.value(healthy_inner.objective_expr())
        elif context["healthy_const"] is not None:
            healthy_value = context["healthy_const"]
        else:
            # minimize_performance mode: the design point was not part of
            # the optimization; reconstruct it for the found demands.
            healthy_value = TotalFlowTE(primary_only=True).solve(
                self.topology, demands, self.paths
            ).total_flow
        failed_value = result.value(failed_inner.objective_expr())
        if self.config.objective == "mlu":
            degradation = failed_value - healthy_value
        else:
            degradation = healthy_value - failed_value

        verified = False
        notes: list[str] = []
        if self.config.verify:
            with current_tracer().span("verify"):
                game.verify(result)
                self._verify_by_simulation(
                    context, demands, scenario, healthy_value, failed_value,
                    notes,
                )
            verified = True

        probability = None
        if self.topology.has_probabilities():
            probability = scenario_probability(self.topology, scenario)

        avg_cap = self.topology.average_lag_capacity()
        normalizer = avg_cap if self.config.objective != "mlu" else 1.0
        if self.config.objective == "mlu":
            notes.append("MLU degradation is reported unnormalized")
        return DegradationResult(
            degradation=degradation,
            normalized_degradation=degradation / normalizer,
            demands=demands,
            scenario=scenario,
            healthy_value=healthy_value,
            failed_value=failed_value,
            scenario_probability=probability,
            status=result.status.value,
            solve_seconds=result.solve_seconds,
            encode_seconds=encode_seconds,
            path_seconds=self.paths.computation_seconds,
            verified=verified,
            num_binaries=game.model.num_integer_vars,
            num_variables=game.model.num_vars,
            num_constraints=game.model.num_constraints,
            solver_stats=result.stats.to_dict() if result.stats else None,
            notes=notes,
        )

    def _verify_by_simulation(self, context, demands, scenario,
                              healthy_value, failed_value, notes) -> None:
        """Cross-check the MILP against the plain TE code path."""
        tol = 1e-3 * max(1.0, abs(healthy_value), abs(failed_value))
        objective = self.config.objective
        if objective == "total_flow":
            healthy = TotalFlowTE(primary_only=True).solve(
                self.topology, demands, self.paths
            )
            failed = simulate_failed_network(
                self.topology, demands, self.paths, scenario
            )
            sim_healthy, sim_failed = healthy.total_flow, failed.total_flow
        elif objective == "mlu":
            healthy = MluTE(primary_only=True).solve(
                self.topology, demands, self.paths
            )
            failed = simulate_failed_mlu(
                self.topology, demands, self.paths, scenario
            )
            sim_healthy, sim_failed = healthy.objective, failed.objective
        else:  # maxmin
            binner = context["binner"]
            healthy = binner.solve(self.topology, demands, self.paths)
            failed = simulate_failed_network(
                self.topology, demands, self.paths, scenario,
                te_factory=lambda: type(binner)(
                    num_bins=binner.num_bins, alpha=binner.alpha,
                    t0=binner.t0, primary_only=False,
                ),
            )
            sim_healthy, sim_failed = healthy.objective, failed.objective

        if abs(sim_healthy - healthy_value) > tol:
            raise VerificationError(
                f"healthy value mismatch: MILP {healthy_value:.6g} vs "
                f"simulated {sim_healthy:.6g}"
            )
        if abs(sim_failed - failed_value) > tol:
            raise VerificationError(
                f"failed value mismatch: MILP {failed_value:.6g} vs "
                f"simulated {sim_failed:.6g}"
            )
        notes.append("simulation cross-check passed")


def simulate_failed_mlu(topology: Topology, demands, paths: PathSet,
                        scenario: FailureScenario):
    """Simulate the failed network under Appendix A's MLU semantics.

    MLU mode measures utilization against the *original* capacities and
    removes traffic from failed infrastructure purely through path kills:
    a path is unusable when it is down or (for backups) not yet activated.
    """
    down = scenario.down_lags(topology)
    path_caps = {}
    for pair, dp in paths.items():
        allowed = set(active_paths(topology, dp, down))
        for path in dp.paths:
            if path not in allowed or path_is_down(topology, path, down):
                path_caps[(pair, path)] = 0.0
    return MluTE(primary_only=False).solve(
        topology, demands, paths, path_caps=path_caps
    )
