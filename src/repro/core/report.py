"""Operator-facing degradation reports.

An alert is only actionable if it explains *what* breaks: which LAGs the
scenario takes out (fully or partially), which demands lose traffic and
how much, and where the surviving load concentrates.  This module turns
a :class:`DegradationResult` into that explanation.
"""

from __future__ import annotations

from repro.core.degradation import DegradationResult
from repro.failures.scenario import simulate_failed_network
from repro.network.topology import Topology
from repro.paths.pathset import PathSet
from repro.te.total_flow import TotalFlowTE


def degradation_report(
    topology: Topology,
    paths: PathSet,
    result: DegradationResult,
    top: int = 10,
) -> str:
    """Render a human-readable incident/risk report.

    Args:
        topology: The analyzed WAN.
        paths: The path configuration used in the analysis.
        result: The analyzer's finding.
        top: How many impacted demands / loaded LAGs to list.

    Returns:
        A multi-line report string.
    """
    lines = ["WAN degradation analysis", "=" * 40]
    lines.append(result.summary())
    if result.scenario_probability is not None:
        lines.append(
            f"scenario probability: {result.scenario_probability:.3e}"
        )

    # Failed infrastructure.
    residual = result.scenario.residual_capacities(topology)
    down = result.scenario.down_lags(topology)
    lines.append("")
    lines.append(f"failed links: {result.scenario.num_failed_links}")
    impacted_lags = []
    for lag in topology.lags:
        lost = lag.capacity - residual[lag.key]
        if lost > 1e-9:
            state = "DOWN" if lag.key in down else "degraded"
            impacted_lags.append((lost, lag, state))
    impacted_lags.sort(key=lambda item: item[0], reverse=True)
    for lost, lag, state in impacted_lags[:top]:
        lines.append(
            f"  {lag.u}-{lag.v}: {state}, capacity "
            f"{lag.capacity:g} -> {residual[lag.key]:g}"
        )
    if len(impacted_lags) > top:
        lines.append(f"  ... and {len(impacted_lags) - top} more LAGs")

    # Per-demand impact (healthy vs failed delivery).
    healthy = TotalFlowTE(primary_only=True).solve(
        topology, result.demands, paths
    )
    failed = simulate_failed_network(
        topology, result.demands, paths, result.scenario
    )
    lines.append("")
    lines.append("most impacted demands (healthy -> failed delivery):")
    losses = []
    for pair, volume in result.demands.items():
        before = healthy.pair_flows.get(pair, 0.0)
        after = failed.pair_flows.get(pair, 0.0) if failed.feasible else 0.0
        if before - after > 1e-9:
            losses.append((before - after, pair, before, after, volume))
    losses.sort(reverse=True)
    if not losses:
        lines.append("  (no demand loses traffic under this scenario)")
    for lost, pair, before, after, volume in losses[:top]:
        lines.append(
            f"  {pair[0]} -> {pair[1]}: {before:g} -> {after:g} "
            f"(demand {volume:g}, lost {lost:g})"
        )
    if len(losses) > top:
        lines.append(f"  ... and {len(losses) - top} more demands")

    lines.append("")
    verified = "yes" if result.verified else "no (verification disabled)"
    lines.append(f"independently verified: {verified}")
    for note in result.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)
