"""Capacity augmentation (Section 7 and Appendix C).

Raha's second usage mode: once a probable degrading scenario exists, find
the cheapest capacity additions that remove *all* probable degradations.
The paper's iterative loop:

1. run the analyzer; if no probable scenario degrades the network, stop;
2. otherwise solve a MILP choosing how many links to add to which LAGs so
   that the failed network matches the healthy network's per-demand flows
   for every (demand, scenario) pair found so far;
3. apply the additions and repeat.

Two augment types are supported:

* :func:`augment_existing_lags` -- add links to LAGs that already exist;
  the augment MILP keeps the path formulation and re-derives LAG/path
  down-ness from the (now constant) scenario plus "did we repair this
  LAG" indicators.
* :func:`augment_new_lags` -- additionally create LAGs where none existed,
  via the edge formulation of multi-commodity flow restricted to each
  demand's pre-existing path edges plus the candidate LAGs (Appendix C),
  with distance-based weights preferring candidates near impacted pairs.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from repro.core.analyzer import RahaAnalyzer
from repro.core.config import RahaConfig
from repro.exceptions import ModelingError, SolverError
from repro.failures.scenario import FailureScenario
from repro.network.demand import DemandMatrix, Pair
from repro.network.topology import LagKey, Link, Topology, lag_key
from repro.paths.ksp import shortest_path
from repro.paths.pathset import PathSet
from repro.solver.expr import quicksum
from repro.solver.linearize import indicator_geq
from repro.solver.model import Model
from repro.te.total_flow import TotalFlowTE


@dataclass
class AugmentStep:
    """One iteration of the augment loop.

    Attributes:
        degradation_before: Normalized degradation the analyzer found
            before this step's additions.
        links_added: Links added per LAG key in this step.
    """

    degradation_before: float
    links_added: dict[LagKey, int] = field(default_factory=dict)

    @property
    def total_links(self) -> int:
        return sum(self.links_added.values())


@dataclass
class AugmentResult:
    """Outcome of the iterative augmentation loop.

    Attributes:
        topology: The augmented topology.
        steps: Per-iteration records (Figure 11a/17a count these).
        converged: Whether no probable degradation remains.
        initial_degradation / final_degradation: Normalized degradations
            before the first and after the last step.
    """

    topology: Topology
    steps: list[AugmentStep]
    converged: bool
    initial_degradation: float
    final_degradation: float

    @property
    def num_steps(self) -> int:
        return len(self.steps)

    @property
    def total_links_added(self) -> int:
        """Figure 11c / 17c: links added across all steps."""
        return sum(step.total_links for step in self.steps)

    @property
    def average_reduction(self) -> float:
        """Figure 11b: mean per-step reduction of the degradation,
        normalized by the initial degradation (1.0 = removed everything
        in one step)."""
        if not self.steps or self.initial_degradation <= 0:
            return 0.0
        drop = self.initial_degradation - self.final_degradation
        return drop / self.initial_degradation / len(self.steps)


def _augment_link_probability(topology: Topology, key: LagKey,
                              can_fail: bool) -> float | None:
    """Probability for newly added capacity.

    The paper "use[s] the average across the failure probability of other
    links on the same LAG"; when the LAG is new or probability-free, the
    topology-wide average applies.  Non-failing augments get ``None``.
    """
    if not can_fail:
        return None
    lag = topology.lag_between(*key)
    pools = []
    if lag is not None:
        pools = [l.failure_probability for l in lag.links
                 if l.failure_probability is not None]
    if not pools:
        pools = [
            l.failure_probability
            for some_lag in topology.lags
            for l in some_lag.links
            if l.failure_probability is not None
        ]
    return sum(pools) / len(pools) if pools else None


def _healthy_targets(topology: Topology, paths: PathSet,
                     demands: DemandMatrix) -> dict[Pair, float]:
    """Per-demand flow the healthy design point carries -- the bar the
    failed-plus-augmented network must clear."""
    healthy = TotalFlowTE(primary_only=True).solve(topology, demands, paths)
    if not healthy.feasible:
        raise SolverError("healthy network infeasible while computing targets")
    return dict(healthy.pair_flows)


def _solve_existing_lag_augment(
    topology: Topology,
    paths: PathSet,
    pool: list[tuple[DemandMatrix, FailureScenario, dict[Pair, float]]],
    link_capacity: float,
    max_added_per_lag: int,
    time_limit: float | None,
) -> dict[LagKey, int]:
    """The Section 7 augment MILP for existing LAGs.

    Shared integer ``add_e`` (links added per LAG); for every pooled
    (demand, scenario) the failed network with capacities
    ``residual_e + add_e * c`` must carry each demand's healthy flow.
    Repairing a dead LAG (``add_e >= 1``) revives the paths through it,
    which in turn can deactivate backups -- the down/activation logic is
    re-derived with repair indicators so the model matches the real
    fail-over semantics.
    """
    model = Model("augment-existing")
    adds = {
        lag.key: model.add_var(integer=True, lb=0, ub=max_added_per_lag,
                               name=f"add[{lag.key}]")
        for lag in topology.lags
    }
    repaired = {}  # z_e = 1 iff add_e >= 1

    def repair_indicator(key: LagKey):
        if key not in repaired:
            repaired[key] = indicator_geq(
                model, adds[key].to_expr(), 1, expr_lb=0,
                expr_ub=max_added_per_lag, name=f"repaired[{key}]",
            )
        return repaired[key]

    for s_idx, (demands, scenario, targets) in enumerate(pool):
        residual = scenario.residual_capacities(topology)
        scenario_down = scenario.down_lags(topology)

        # Effective down-ness per path: a scenario-down LAG stays down
        # unless repaired.
        path_down = {}
        for pair, dp in paths.items():
            for j, path in enumerate(dp.paths):
                dead = [
                    lag.key for lag in topology.lags_on_path(path)
                    if lag.key in scenario_down
                ]
                if not dead:
                    path_down[(pair, j)] = 0.0
                    continue
                not_repaired = quicksum(
                    1 - repair_indicator(k).to_expr() for k in dead
                )
                pd = model.add_var(binary=True, name=f"pd{s_idx}[{pair}][{j}]")
                model.add_constr(len(dead) * pd.to_expr() >= not_repaired)
                model.add_constr(pd.to_expr() <= not_repaired)
                path_down[(pair, j)] = pd

        per_lag: dict[LagKey, list] = {}
        for pair, dp in paths.items():
            volume = demands.get(pair, 0.0)
            terms = []
            for j, path in enumerate(dp.paths):
                var = model.add_var(name=f"f{s_idx}[{pair}][{j}]")
                terms.append(var)
                for lag in topology.lags_on_path(path):
                    per_lag.setdefault(lag.key, []).append(var)
                if j >= dp.num_primary:
                    # Backup activation against the effective down-ness.
                    higher = [path_down[(pair, i)] for i in range(j)]
                    higher_vars = [u for u in higher
                                   if not isinstance(u, float)]
                    needed = j - dp.num_primary + 1
                    if len(higher_vars) < needed:
                        model.add_constr(var <= 0.0)
                        continue
                    act = indicator_geq(
                        model, quicksum(higher_vars), needed, expr_lb=0,
                        expr_ub=len(higher_vars),
                        name=f"act{s_idx}[{pair}][{j}]",
                    )
                    model.add_constr(var <= volume * act.to_expr())
            model.add_constr(quicksum(terms) <= volume)
            model.add_constr(quicksum(terms) >= targets.get(pair, 0.0) - 1e-9)
        for key, vars_on_lag in per_lag.items():
            model.add_constr(
                quicksum(vars_on_lag)
                <= residual[key] + link_capacity * adds[key].to_expr()
            )

    model.set_objective(quicksum(a for a in adds.values()), sense="min")
    result = model.solve(time_limit=time_limit)
    if not result.status.ok or result.x is None:
        raise SolverError(
            f"augment MILP failed ({result.status.value}); consider raising "
            "max_added_per_lag"
        )
    return {
        key: int(round(result.value(var)))
        for key, var in adds.items()
        if result.value(var) > 0.5
    }


def augment_existing_lags(
    topology: Topology,
    paths: PathSet,
    config: RahaConfig,
    link_capacity: float | None = None,
    new_links_can_fail: bool = True,
    tolerance: float = 1e-6,
    max_steps: int = 10,
    max_added_per_lag: int = 64,
) -> AugmentResult:
    """Iteratively add links to existing LAGs until no probable degradation.

    Args:
        topology: The WAN to protect.
        paths: Configured paths (unchanged by this augment type).
        config: The analysis configuration describing "probable" (its
            probability threshold / failure budget / demand mode).
        link_capacity: Capacity per added link; defaults to the average
            link capacity of the topology.
        new_links_can_fail: Figure 11 vs Figure 17: whether added capacity
            participates in future failure searches (probability set to
            the LAG's average when it does).
        tolerance: Degradations at or below this (absolute) count as zero.
        max_steps: Iteration budget; the paper observes convergence within
            2-6 steps.
        max_added_per_lag: Upper bound on per-LAG additions per step.
    """
    if link_capacity is None:
        link_capacity = (
            sum(l.capacity for lag in topology.lags for l in lag.links)
            / max(1, topology.num_links)
        )
    if link_capacity <= 0:
        raise ModelingError("link_capacity must be positive")

    current = topology
    pool: list[tuple[DemandMatrix, FailureScenario, dict[Pair, float]]] = []
    steps: list[AugmentStep] = []
    initial = None
    final = 0.0
    converged = False

    for _ in range(max_steps):
        result = RahaAnalyzer(current, paths, config).analyze()
        degradation = result.degradation
        if initial is None:
            initial = degradation
        final = degradation
        if degradation <= tolerance:
            converged = True
            break
        targets = _healthy_targets(current, paths, result.demands)
        pool.append((result.demands, result.scenario, targets))
        additions = _solve_existing_lag_augment(
            current, paths, pool, link_capacity, max_added_per_lag,
            config.time_limit,
        )
        if not additions:
            # The MILP says no additions are needed yet the analyzer
            # still finds degradation: numerical corner; stop honestly.
            break
        new_links = {
            key: [
                Link(
                    capacity=link_capacity,
                    failure_probability=_augment_link_probability(
                        current, key, new_links_can_fail
                    ),
                    can_fail=new_links_can_fail,
                )
            ] * count
            for key, count in additions.items()
        }
        steps.append(AugmentStep(degradation_before=degradation,
                                 links_added=dict(additions)))
        current = current.with_added_links(new_links)

    if not converged and final <= tolerance:
        converged = True
    return AugmentResult(
        topology=current,
        steps=steps,
        converged=converged,
        initial_degradation=initial if initial is not None else 0.0,
        final_degradation=final,
    )


def _candidate_weights(
    topology: Topology,
    candidates: list[LagKey],
    impacted: set[str],
) -> dict[LagKey, float]:
    """Appendix C: prefer candidates close to the impacted endpoints."""
    weights = {}
    for key in candidates:
        u, v = key
        best = math.inf
        for node in impacted:
            for endpoint in (u, v):
                if endpoint == node:
                    best = 0
                    break
                path = shortest_path(topology, endpoint, node) \
                    if topology.has_node(endpoint) else None
                if path is not None:
                    best = min(best, len(path) - 1)
        weights[key] = 1.0 + 0.1 * (0 if math.isinf(best) else best)
    return weights


def augment_new_lags(
    topology: Topology,
    path_factory: Callable[[Topology], PathSet],
    config_factory: Callable[[PathSet], RahaConfig],
    candidate_edges: Iterable[LagKey],
    link_capacity: float | None = None,
    new_links_can_fail: bool = False,
    tolerance: float = 1e-6,
    max_steps: int = 10,
    max_added_per_lag: int = 64,
) -> AugmentResult:
    """Iteratively add (possibly new) LAGs until no probable degradation.

    New LAGs change every demand's path set, so the augment step uses the
    edge formulation (Appendix C) restricted to pre-existing path edges
    plus the operator's viable ``candidate_edges``, and paths are
    *recomputed* after every step through ``path_factory``.

    Args:
        topology: The WAN to protect.
        path_factory: Rebuilds the path set for a (possibly augmented)
            topology -- e.g. ``lambda t: PathSet.k_shortest(t, pairs, 4, 1)``.
        config_factory: Rebuilds the analyzer config for a new path set
            (demand bounds usually do not change, but the config object
            references pairs so a fresh one per step keeps this honest).
        candidate_edges: LAG keys the operator considers physically viable
            (existing LAG keys are allowed too and mean "grow this LAG").
        link_capacity: Capacity per added link; defaults to the topology's
            average link capacity.
        new_links_can_fail: Whether added capacity may fail later
            (Figure 18 evaluates the non-failing case).
        tolerance / max_steps / max_added_per_lag: As in
            :func:`augment_existing_lags`.
    """
    from repro.te.edge_mcf import EdgeMcf

    candidates = [lag_key(*k) for k in candidate_edges]
    for u, v in candidates:
        if not (topology.has_node(u) and topology.has_node(v)):
            raise ModelingError(f"candidate edge ({u!r}, {v!r}) not in topology")
    if link_capacity is None:
        link_capacity = (
            sum(l.capacity for lag in topology.lags for l in lag.links)
            / max(1, topology.num_links)
        )

    current = topology
    steps: list[AugmentStep] = []
    initial = None
    final = 0.0
    converged = False

    for _ in range(max_steps):
        paths = path_factory(current)
        config = config_factory(paths)
        result = RahaAnalyzer(current, paths, config).analyze()
        degradation = result.degradation
        if initial is None:
            initial = degradation
        final = degradation
        if degradation <= tolerance:
            converged = True
            break

        targets = _healthy_targets(current, paths, result.demands)
        impacted = {
            node
            for pair, target in targets.items()
            for node in pair
            if target > 0
        }
        # Appendix C ties the edge form "closely to the path form": the
        # edge form has every route available, so with residual capacity
        # alone it can claim the targets are already met even though the
        # *path form* (the network's real behavior) drops traffic.  The
        # binding refinement: each demand's shortfall -- what the failed
        # path-form network fails to deliver -- must be carried by the
        # candidate LAGs, which forces the MILP to actually add capacity.
        from repro.failures.scenario import simulate_failed_network

        failed_sim = simulate_failed_network(
            current, result.demands, paths, result.scenario
        )
        shortfalls = {
            pair: max(0.0, targets.get(pair, 0.0)
                      - failed_sim.pair_flows.get(pair, 0.0))
            for pair in targets
        }
        additions = _solve_new_lag_augment(
            current, paths, result.demands, result.scenario, targets,
            candidates, link_capacity, max_added_per_lag,
            _candidate_weights(current, candidates, impacted),
            config.time_limit,
            shortfalls=shortfalls,
        )
        if not additions:
            break
        new_links = {
            key: [
                Link(
                    capacity=link_capacity,
                    failure_probability=_augment_link_probability(
                        current, key, new_links_can_fail
                    ),
                    can_fail=new_links_can_fail,
                )
            ] * count
            for key, count in additions.items()
        }
        steps.append(AugmentStep(degradation_before=degradation,
                                 links_added=dict(additions)))
        current = current.with_added_links(new_links)

    if not converged and final <= tolerance:
        converged = True
    return AugmentResult(
        topology=current,
        steps=steps,
        converged=converged,
        initial_degradation=initial if initial is not None else 0.0,
        final_degradation=final,
    )


def _solve_new_lag_augment(
    topology: Topology,
    paths: PathSet,
    demands: DemandMatrix,
    scenario: FailureScenario,
    targets: dict[Pair, float],
    candidates: list[LagKey],
    link_capacity: float,
    max_added_per_lag: int,
    weights: dict[LagKey, float],
    time_limit: float | None,
    shortfalls: dict[Pair, float] | None = None,
) -> dict[LagKey, int]:
    """Appendix C's edge-form augment MILP for one (demand, scenario).

    Flow conservation over a working topology that includes candidate
    LAGs at ``add_e * c`` capacity; each demand restricted to its
    pre-existing path edges plus the candidates; per-demand lower bounds
    equal the healthy targets; weighted link count minimized.  When
    ``shortfalls`` are given, each demand's shortfall must traverse
    candidate LAGs (the path-form tie-in described in the caller).
    """
    from repro.te.edge_mcf import EdgeMcf

    # Build the working topology: existing LAGs plus zero-capacity
    # placeholders for candidates that do not exist yet.
    work = topology.copy(name="augment-work")
    for key in candidates:
        if work.lag_between(*key) is None:
            work.add_lag(key[0], key[1], capacity=0.0, num_links=1)

    residual = scenario.residual_capacities(topology)
    allowed = EdgeMcf.allowed_edges_from_paths(paths, topology,
                                               extra_edges=candidates)

    model = Model("augment-new")
    adds = {
        key: model.add_var(integer=True, lb=0, ub=max_added_per_lag,
                           name=f"add[{key}]")
        for key in {lag.key for lag in work.lags}
    }
    # Only candidates (and existing LAGs named as candidates) may grow.
    growable = set(candidates)
    for key, var in adds.items():
        if key not in growable:
            model.add_constr(var <= 0)

    routed: dict[Pair, object] = {}
    per_lag: dict[LagKey, list] = {}
    new_capacity_users: dict[LagKey, list] = {}
    for pair in demands:
        src, dst = pair
        f_k = model.add_var(ub=max(demands[pair], 0.0), name=f"f[{pair}]")
        routed[pair] = f_k
        outgoing: dict[str, list] = {}
        incoming: dict[str, list] = {}
        candidate_flows: dict[LagKey, list] = {}
        for lag in work.lags:
            if lag.key not in allowed.get(pair, set()):
                continue
            fwd = model.add_var(name=f"e[{pair}][{lag.key}]+")
            bwd = model.add_var(name=f"e[{pair}][{lag.key}]-")
            per_lag.setdefault(lag.key, []).extend([fwd, bwd])
            outgoing.setdefault(lag.u, []).append(fwd)
            incoming.setdefault(lag.v, []).append(fwd)
            outgoing.setdefault(lag.v, []).append(bwd)
            incoming.setdefault(lag.u, []).append(bwd)
            if lag.key in growable:
                candidate_flows.setdefault(lag.key, []).extend([fwd, bwd])
        for node in work.nodes:
            balance = quicksum(outgoing.get(node, [])) - quicksum(
                incoming.get(node, [])
            )
            if node == src:
                model.add_constr(balance == f_k)
            elif node == dst:
                model.add_constr(balance == -f_k)
            else:
                model.add_constr(balance == 0)
        model.add_constr(f_k >= targets.get(pair, 0.0) - 1e-9)
        shortfall = (shortfalls or {}).get(pair, 0.0)
        if shortfall > 1e-9 and candidate_flows:
            # The traffic the path-form network drops must ride on links
            # added *in this step*: residual candidate capacity (including
            # LAGs built by earlier steps) already failed to carry it in
            # the path form.  new_use tracks the pair's claim on each
            # candidate's fresh capacity.
            uses = []
            for key, flows_on_e in candidate_flows.items():
                use = model.add_var(name=f"newuse[{pair}][{key}]")
                model.add_constr(use <= quicksum(flows_on_e))
                new_capacity_users.setdefault(key, []).append(use)
                uses.append(use)
            model.add_constr(quicksum(uses) >= shortfall - 1e-9)
    for key, vars_on_lag in per_lag.items():
        base = residual.get(key, 0.0)
        model.add_constr(
            quicksum(vars_on_lag)
            <= base + link_capacity * adds[key].to_expr()
        )
    # New-capacity accounting: shortfall traffic may only claim the links
    # added in this step.
    for key, users in new_capacity_users.items():
        model.add_constr(
            quicksum(users) <= link_capacity * adds[key].to_expr()
        )

    model.set_objective(
        quicksum(weights.get(key, 1.0) * var for key, var in adds.items()),
        sense="min",
    )
    result = model.solve(time_limit=time_limit)
    if not result.status.ok or result.x is None:
        raise SolverError(
            f"new-LAG augment MILP failed ({result.status.value})"
        )
    return {
        key: int(round(result.value(var)))
        for key, var in adds.items()
        if result.value(var) > 0.5
    }
