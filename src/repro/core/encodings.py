"""The Section 5 MILP encodings: modeling the unhealthy network.

This module creates, inside a host model, the *outer* variables and
constraints that let a convex inner problem describe the network under
failure -- the paper's central trick ("we extract the non-convexity into
the outer problem"):

* per-link failure binaries ``u_le`` (with SRLG fate-sharing);
* variable LAG capacities ``c_e = sum_l c_le (1 - u_le)``;
* LAG-down binaries via Eq. 3 (``N_e u_e + aux = sum u_le``);
* path-down binaries via Eq. 4 (``N_kp u_kp >= sum_{e in p} u_e``);
* backup activation indicators and path-extension capacities via Eq. 5
  (``C_kpj = d_k * I(sum_{i<j} u_kpi >= j - n_kp + 1)``);
* the Section 5.1 constraint library: probability thresholds (in log
  form), failure-count limits, connected-enforcement.

**Failability.** A link participates in the failure search only if it is
*failable*: links without a failure probability are treated as
non-failable when a probability threshold is active (they have no term in
the probability product), and always when their LAG is listed in
``non_failable_lags`` -- this is how virtual gateway LAGs (Section 9) and
"cannot fail" capacity augments (Figure 17/18) are modeled.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from math import log

from repro.core.config import RahaConfig
from repro.exceptions import ModelingError
from repro.failures.scenario import FailureScenario
from repro.network.demand import Pair
from repro.network.topology import LagKey, Topology, lag_key
from repro.paths.pathset import PathSet
from repro.solver.expr import LinExpr, Var, quicksum
from repro.solver.linearize import indicator_geq, product_binary_bounded
from repro.solver.model import Model
from repro.solver.result import SolveResult


@dataclass
class FailureEncoding:
    """Outer failure variables and the expressions built on them.

    Attributes:
        model: Host model everything is posted to.
        topology: The WAN.
        paths: Configured paths per demand.
        config: Analysis knobs.
        non_failable_lags: LAGs whose links may never fail.
    """

    model: Model
    topology: Topology
    paths: PathSet
    config: RahaConfig
    non_failable_lags: frozenset[LagKey] = frozenset()

    #: (lag key, link idx) -> binary Var, or 0.0 for non-failable links.
    link_down: dict = field(default_factory=dict, init=False)
    #: lag key -> binary Var, or 0.0 when the LAG can never fully fail.
    lag_down: dict = field(default_factory=dict, init=False)
    #: lag key -> LinExpr: the variable capacity c_e.
    lag_capacity: dict = field(default_factory=dict, init=False)
    #: (pair, path idx) -> binary Var or 0.0: path-down u_kp.
    path_down: dict = field(default_factory=dict, init=False)
    #: (pair, path idx) -> binary Var or constant: backup active a_kpj
    #: (primaries map to the constant 1.0).
    path_active: dict = field(default_factory=dict, init=False)

    def __post_init__(self):
        self._build_link_variables()
        self._build_lag_down()
        self._build_path_down()
        self._build_activation()
        self._add_scenario_constraints()

    # -- failability --------------------------------------------------------
    def link_is_failable(self, key: LagKey, link_index: int) -> bool:
        """Whether the failure search may bring this link down."""
        if lag_key(*key) in self.non_failable_lags:
            return False
        lag = self.topology.require_lag(*key)
        link = lag.links[link_index]
        if not link.can_fail:
            return False
        if link.failure_probability is None:
            if self.config.probability_threshold is None:
                return True
            # Under a threshold the link needs a term in the probability
            # product: its own probability, or its SRLG's group one.
            member = (lag_key(*key), link_index)
            return any(
                srlg.failure_probability is not None
                and any(
                    (lag_key(*m[0]), m[1]) == member for m in srlg.members
                )
                for srlg in self.topology.srlgs
            )
        return True

    # -- construction ---------------------------------------------------------
    def _srlg_groups(self) -> dict[tuple[LagKey, int], int]:
        """Map each SRLG member to its group id."""
        groups: dict[tuple[LagKey, int], int] = {}
        for gid, srlg in enumerate(self.topology.srlgs):
            for member in srlg.members:
                key, idx = lag_key(*member[0]), member[1]
                if (key, idx) in groups:
                    raise ModelingError(
                        f"link {key}#{idx} belongs to multiple SRLGs"
                    )
                groups[(key, idx)] = gid
        return groups

    def _build_link_variables(self) -> None:
        srlg_of = self._srlg_groups()
        group_var: dict[int, Var] = {}
        for lag in self.topology.lags:
            for i in range(lag.num_links):
                if not self.link_is_failable(lag.key, i):
                    self.link_down[(lag.key, i)] = 0.0
                    continue
                gid = srlg_of.get((lag.key, i))
                if gid is not None:
                    # SRLG members share one binary (fate-sharing).
                    if gid not in group_var:
                        group_var[gid] = self.model.add_var(
                            binary=True, name=f"u_srlg[{gid}]"
                        )
                    self.link_down[(lag.key, i)] = group_var[gid]
                else:
                    self.link_down[(lag.key, i)] = self.model.add_var(
                        binary=True, name=f"u[{lag.key}#{i}]"
                    )
        # Variable LAG capacities: c_e = sum c_le (1 - u_le).
        for lag in self.topology.lags:
            expr = LinExpr()
            for i, link in enumerate(lag.links):
                u = self.link_down[(lag.key, i)]
                if isinstance(u, Var):
                    expr = expr + link.capacity * (1 - u.to_expr())
                else:
                    expr = expr + link.capacity
            self.lag_capacity[lag.key] = expr

    def _build_lag_down(self) -> None:
        """Eq. 3: a LAG is down only when all of its links are down."""
        for lag in self.topology.lags:
            us = [self.link_down[(lag.key, i)] for i in range(lag.num_links)]
            if any(not isinstance(u, Var) for u in us):
                # Some link can never fail, so the LAG can never be down.
                self.lag_down[lag.key] = 0.0
                continue
            n = lag.num_links
            u_e = self.model.add_var(binary=True, name=f"lagdown[{lag.key}]")
            aux = self.model.add_var(lb=0.0, ub=n - 1, name=f"aux[{lag.key}]")
            self.model.add_constr(
                n * u_e.to_expr() + aux == quicksum(us),
                name=f"eq3[{lag.key}]",
            )
            self.lag_down[lag.key] = u_e

    def _build_path_down(self) -> None:
        """Eq. 4: a path is down when any of its LAGs is down."""
        for pair, dp in self.paths.items():
            for j, path in enumerate(dp.paths):
                lag_downs = [
                    self.lag_down[lag.key]
                    for lag in self.topology.lags_on_path(path)
                ]
                down_vars = [u for u in lag_downs if isinstance(u, Var)]
                if not down_vars:
                    self.path_down[(pair, j)] = 0.0
                    continue
                u_kp = self.model.add_var(
                    binary=True, name=f"pathdown[{pair}][{j}]"
                )
                n = len(lag_downs)
                total = quicksum(down_vars)
                self.model.add_constr(
                    n * u_kp.to_expr() >= total, name=f"eq4[{pair}][{j}]"
                )
                if self.config.exact_path_down:
                    self.model.add_constr(
                        u_kp.to_expr() <= total, name=f"eq4x[{pair}][{j}]"
                    )
                self.path_down[(pair, j)] = u_kp

    def _build_activation(self) -> None:
        """Eq. 5's indicator: the r-th backup needs r higher-priority downs."""
        for pair, dp in self.paths.items():
            for j in range(len(dp.paths)):
                if j < dp.num_primary:
                    self.path_active[(pair, j)] = 1.0
                    continue
                higher = [
                    self.path_down[(pair, i)] for i in range(j)
                ]
                higher_vars = [u for u in higher if isinstance(u, Var)]
                needed = j - dp.num_primary + 1
                if len(higher_vars) < needed:
                    # Not enough failable higher-priority paths: the
                    # activation condition can never hold.
                    self.path_active[(pair, j)] = 0.0
                    continue
                self.path_active[(pair, j)] = indicator_geq(
                    self.model,
                    quicksum(higher_vars),
                    needed,
                    expr_lb=0,
                    expr_ub=len(higher_vars),
                    name=f"active[{pair}][{j}]",
                )

    def _add_scenario_constraints(self) -> None:
        """Section 5.1: probability threshold, failure count, CE."""
        config = self.config
        if config.probability_threshold is not None:
            self._add_probability_constraint(config.probability_threshold)
        if config.max_failures is not None:
            failable = [
                u for u in self.link_down.values() if isinstance(u, Var)
            ]
            # Deduplicate SRLG-shared binaries but count each member link.
            counted = quicksum(failable)
            self.model.add_constr(
                counted <= config.max_failures, name="max_failures"
            )
        if config.connected_enforced:
            for pair, dp in self.paths.items():
                downs = [
                    self.path_down[(pair, j)] for j in range(len(dp.paths))
                ]
                down_vars = [u for u in downs if isinstance(u, Var)]
                if len(down_vars) == len(dp.paths):
                    self.model.add_constr(
                        quicksum(down_vars) <= len(dp.paths) - 1,
                        name=f"ce[{pair}]",
                    )

    def _add_probability_constraint(self, threshold: float) -> None:
        """log(prod pi^u (1-pi)^(1-u)) >= log T, linearized per Section 5.1.

        SRLG members with a group probability contribute a single term
        driven by the shared binary; other links contribute individually.
        """
        srlg_prob: dict[int, float] = {}
        srlg_member: dict[tuple[LagKey, int], int] = {}
        for gid, srlg in enumerate(self.topology.srlgs):
            if srlg.failure_probability is not None:
                srlg_prob[gid] = srlg.failure_probability
                for member in srlg.members:
                    srlg_member[(lag_key(*member[0]), member[1])] = gid

        expr = LinExpr()
        group_done: set[int] = set()
        for lag in self.topology.lags:
            for i, link in enumerate(lag.links):
                u = self.link_down[(lag.key, i)]
                if not isinstance(u, Var):
                    continue  # non-failable: stays up, contributes log(1)~0
                gid = srlg_member.get((lag.key, i))
                if gid is not None:
                    if gid in group_done:
                        continue
                    pi = srlg_prob[gid]
                    group_done.add(gid)
                else:
                    pi = link.failure_probability
                    if pi is None:
                        raise ModelingError(
                            f"link {lag.key}#{i} is failable under a "
                            "probability threshold but has no probability"
                        )
                # u*log(pi) + (1-u)*log(1-pi)
                expr = expr + log(pi) * u.to_expr()
                expr = expr + log(1.0 - pi) * (1 - u.to_expr())
        self.model.add_constr(expr >= log(threshold), name="probability")

    # -- extraction ---------------------------------------------------------
    def extract_scenario(self, result: SolveResult) -> FailureScenario:
        """Read the failure scenario off a solved host model."""
        failed = []
        for (key, i), u in self.link_down.items():
            if isinstance(u, Var) and result.value(u) > 0.5:
                failed.append((key, i))
        return FailureScenario(failed)

    def down_path_indices(self, result: SolveResult) -> dict[Pair, list[int]]:
        """Which path indices the solution marks as down, per pair."""
        out: dict[Pair, list[int]] = {}
        for (pair, j), u in self.path_down.items():
            if isinstance(u, Var) and result.value(u) > 0.5:
                out.setdefault(pair, []).append(j)
        return out


def build_path_extension_caps(
    model: Model,
    encoding: FailureEncoding,
    demand_exprs: Mapping[Pair, object],
    demand_uppers: Mapping[Pair, float],
    kill_down_paths: bool = False,
) -> dict[tuple[Pair, int], object]:
    """Eq. 5's path-extension capacities ``C_kpj``.

    For each demand pair and path index ``j`` this returns:

    * ``None`` for paths with no cap (primaries under the total-flow
      objective -- their flow is already limited by the demand constraint
      and the variable LAG capacities);
    * a number or expression otherwise: the artificial LAG's capacity,
      equal to ``d_k`` when the path may carry traffic and 0 when not.

    Args:
        model: Host model.
        encoding: The failure encoding providing activation/down binaries.
        demand_exprs: Demand per pair -- a Var (joint mode) or float.
        demand_uppers: Finite upper bound per pair (the McCormick big-M).
        kill_down_paths: Also zero the capacity of *down* paths.  Needed
            for MLU (Appendix A), where LAG capacity constraints are not
            part of the model and path extensions are the only mechanism
            that stops traffic from crossing a dead LAG.
    """
    caps: dict[tuple[Pair, int], object] = {}
    for pair, dp in encoding.paths.items():
        d_expr = demand_exprs[pair]
        d_hi = demand_uppers[pair]
        for j in range(len(dp.paths)):
            active = encoding.path_active[(pair, j)]
            down = encoding.path_down[(pair, j)]

            usable = _usable_indicator(model, active, down, kill_down_paths,
                                       name=f"usable[{pair}][{j}]")
            if usable is None:
                # Unconditionally usable: no artificial cap needed.
                caps[(pair, j)] = None
                continue
            if isinstance(usable, float):
                caps[(pair, j)] = usable * d_expr if usable else 0.0
                continue
            if isinstance(d_expr, (int, float)):
                # Fixed demand: C = d * usable is a plain scaling.
                caps[(pair, j)] = float(d_expr) * usable.to_expr()
            else:
                caps[(pair, j)] = product_binary_bounded(
                    model, usable, d_expr, factor_ub=d_hi,
                    name=f"C[{pair}][{j}]",
                )
    return caps


def _usable_indicator(model: Model, active, down, kill_down_paths: bool,
                      name: str):
    """Combine activation and down-ness into one usability signal.

    Returns ``None`` when the path is unconditionally usable (constant
    active, and down-ness is irrelevant or constantly up), a float 0/1
    when usability is constant, or a binary Var otherwise.
    """
    if not kill_down_paths:
        # Usability = activation only (LAG capacities handle down paths).
        if isinstance(active, float):
            return None if active == 1.0 else 0.0
        return active
    # Usability = active AND NOT down.
    if isinstance(active, float) and active == 0.0:
        return 0.0
    if isinstance(down, float):  # never down
        if isinstance(active, float):
            return None if active == 1.0 else 0.0
        return active
    if isinstance(active, float):  # always active (primary)
        w = model.add_var(binary=True, name=name)
        model.add_constr(w.to_expr() == 1 - down.to_expr(), name=f"{name}:def")
        return w
    w = model.add_var(binary=True, name=name)
    model.add_constr(w.to_expr() <= active.to_expr(), name=f"{name}:a")
    model.add_constr(w.to_expr() <= 1 - down.to_expr(), name=f"{name}:d")
    model.add_constr(
        w.to_expr() >= active.to_expr() - down.to_expr(), name=f"{name}:ad"
    )
    return w


def add_naive_failover_constraints(
    model: Model,
    paths: PathSet,
    healthy_flow: Mapping[tuple[Pair, int], Var],
    failed_flow: Mapping[tuple[Pair, int], Var],
) -> None:
    """Section 5.1's naive fail-over coupling.

    ``f_{k, p_{n_kp + r}} <= f^o_{k, p_r}``: the r-th backup may carry at
    most what the healthy network put on the r-th primary, and every
    primary's failed flow may not exceed its healthy flow.  Backups beyond
    the primary count are capped at zero (no healthy counterpart).
    """
    for pair, dp in paths.items():
        n = dp.num_primary
        for j in range(len(dp.paths)):
            f_var = failed_flow.get((pair, j))
            if f_var is None:
                continue
            if j < n:
                source = healthy_flow.get((pair, j))
            else:
                r = j - n
                source = healthy_flow.get((pair, r)) if r < n else None
            if source is None:
                model.add_constr(f_var <= 0.0, name=f"naive0[{pair}][{j}]")
            else:
                model.add_constr(
                    f_var <= source.to_expr(), name=f"naive[{pair}][{j}]"
                )


def failable_link_keys(
    topology: Topology,
    config: RahaConfig,
    non_failable_lags: Iterable[LagKey] = (),
) -> list[tuple[LagKey, int]]:
    """The links a :class:`FailureEncoding` would let fail (for reports)."""
    banned = {lag_key(*k) for k in non_failable_lags}
    out = []
    for lag in topology.lags:
        if lag.key in banned:
            continue
        for i, link in enumerate(lag.links):
            if link.failure_probability is None and (
                config.probability_threshold is not None
            ):
                continue
            out.append((lag.key, i))
    return out
