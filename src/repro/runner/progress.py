"""Structured progress and throughput events for sweep campaigns.

The executor reports every settled job through a callback; the tracker
here turns those reports into :class:`ProgressEvent` records carrying
campaign-level statistics -- completion counts, cache-hit and error
tallies, accumulated solver seconds, jobs/second throughput, and an
ETA.  The CLI renders them as single lines on stderr; programmatic
callers (benchmarks, notebooks) can consume the events directly.

ETA semantics: cached and journal-resumed jobs settle orders of
magnitude faster than fresh solves, so a campaign resuming 900 of 1000
jobs would, under a naive all-jobs rate, forecast the remaining 100
fresh solves at cache speed.  The tracker therefore times *freshly
solved* jobs separately and bases ``eta_seconds`` on that rate.  The
fresh rate is measured over the window since the **first fresh
settle** -- not since the campaign started -- because the campaign
clock includes the cache-replay phase: dividing fresh completions by
total elapsed would dilute the fresh rate by however long the replay
took and overestimate the ETA (the second half of the resume-heavy
campaign bug).  Until enough fresh jobs have settled to define that
window it falls back to coarser signals (whole-campaign fresh rate
after one fresh settle, the blended rate before any).  ``rate``
remains the blended jobs-per-second throughput -- it answers "how
fast is the campaign moving", while the ETA answers "when will the
remaining work finish".
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field

#: Statuses answered without running a solver (cache or journal).
_CACHE_STATUSES = ("cached", "resumed")


@dataclass
class ProgressEvent:
    """One campaign heartbeat, emitted as each job settles.

    Attributes:
        completed / total: Jobs settled so far vs the campaign size.
        status: The settling job's status (``done``/``cached``/
            ``resumed``/``error``/``timeout``).
        label: The settling job's human-readable tag.
        cache_hits: Jobs answered from the result cache so far
            (including journal-resumed ones).
        errors: Jobs that settled with a structured error so far.
        elapsed_seconds: Wall time since the campaign started.
        solver_seconds: Sum of reported per-job solver time so far.
        rate: Jobs settled per wall-clock second (blended: cached,
            resumed, and fresh jobs all count).
        eta_seconds: Remaining-work estimate based on the *fresh-solve*
            rate (see the module docstring); blended until the first
            fresh job settles, ``None`` when nothing remains.  May be
            exactly ``0.0`` on the final heartbeat of a campaign.
        fresh_completed: Jobs that actually ran (not cache-answered).
        build_seconds / compile_seconds: Sums of the per-job
            :class:`repro.solver.result.SolveStats` model-build and
            matrix-compile times, when jobs report telemetry -- these are
            what separate "the solver is slow" from "the encoding is
            slow" in sweep summaries.
        phase_seconds: Per-phase span totals accumulated from traced
            jobs (``{span_name: seconds}``); empty when tracing is off.
    """

    completed: int
    total: int
    status: str
    label: str
    cache_hits: int
    errors: int
    elapsed_seconds: float
    solver_seconds: float
    rate: float
    eta_seconds: float | None
    build_seconds: float = 0.0
    compile_seconds: float = 0.0
    fresh_completed: int = 0
    phase_seconds: dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        """The one-line form the CLI prints."""
        eta = (
            f", eta {self.eta_seconds:.0f}s"
            if self.eta_seconds is not None else ""
        )
        return (
            f"[{self.completed}/{self.total}] {self.status:<7} {self.label}"
            f"  ({self.cache_hits} cached, {self.errors} errors, "
            f"{self.rate:.2f} jobs/s{eta})"
        )


class ProgressTracker:
    """Accumulates outcomes into :class:`ProgressEvent` heartbeats.

    Args:
        total: Campaign size in jobs.
        clock: Monotonic time source (injectable for deterministic
            tests; defaults to :func:`time.monotonic`).
    """

    def __init__(self, total: int, clock=time.monotonic):
        self.total = total
        self.completed = 0
        self.cache_hits = 0
        self.errors = 0
        self.solver_seconds = 0.0
        self.build_seconds = 0.0
        self.compile_seconds = 0.0
        self.fresh_completed = 0
        self.phase_seconds: dict[str, float] = {}
        self._clock = clock
        self._started = clock()
        #: When the first fresh job settled; anchors the fresh-rate
        #: window so the cache-replay phase never dilutes the ETA.
        self._fresh_anchor: float | None = None

    def note(self, status: str, label: str,
             solver_seconds: float = 0.0,
             stats: dict | None = None,
             spans: list[dict] | None = None) -> ProgressEvent:
        """Record one settled job and return the campaign heartbeat.

        Args:
            status: The job's settle status.
            label: The job's human-readable tag.
            solver_seconds: The job's reported solver time.
            stats: Optional :class:`repro.solver.result.SolveStats` dict
                from the job's MILP solve; its build/compile times are
                accumulated into the campaign totals.
            spans: Optional serialized trace spans from the job's worker
                (see :mod:`repro.obs.trace`); their durations roll up
                into :attr:`ProgressEvent.phase_seconds` by span name.
        """
        self.completed += 1
        if status in _CACHE_STATUSES:
            self.cache_hits += 1
        else:
            self.fresh_completed += 1
            if self._fresh_anchor is None:
                self._fresh_anchor = self._clock()
        if status in ("error", "timeout"):
            self.errors += 1
        self.solver_seconds += solver_seconds
        if stats:
            self.build_seconds += float(stats.get("build_seconds", 0.0))
            self.compile_seconds += float(stats.get("compile_seconds", 0.0))
        if spans:
            for doc in spans:
                if doc.get("type", "span") != "span":
                    continue
                name = doc["name"]
                self.phase_seconds[name] = (
                    self.phase_seconds.get(name, 0.0)
                    + float(doc.get("duration_seconds", 0.0))
                )
        return self._event(status, label)

    def snapshot(self, status: str, label: str) -> ProgressEvent:
        """A heartbeat of the campaign *as it stands*, settling nothing.

        Used for out-of-band events -- e.g. the final ``interrupted``
        heartbeat a draining campaign emits after SIGINT/SIGTERM -- so
        observers see the closing counters without a job being charged.
        """
        return self._event(status, label)

    def _event(self, status: str, label: str) -> ProgressEvent:
        now = self._clock()
        elapsed = max(now - self._started, 1e-9)
        rate = self.completed / elapsed
        remaining = self.total - self.completed
        # ETA from the fresh-solve rate: cache-answered jobs settle so
        # much faster that counting them would forecast remaining fresh
        # work at cache speed (the resume-heavy campaign bug).  The
        # rate is measured over the window since the first fresh
        # settle: total elapsed includes the cache-replay phase, and
        # dividing by it would understate the fresh rate (so overstate
        # the ETA) on a resume-heavy campaign.  The anchor job itself
        # is excluded from the numerator -- its solve time predates
        # the window.
        if self.fresh_completed >= 2 and self._fresh_anchor is not None:
            window = max(now - self._fresh_anchor, 1e-9)
            fresh_rate = (self.fresh_completed - 1) / window
        else:
            # One fresh sample: the whole-campaign average is the only
            # per-solve signal (slightly pessimistic after a replay
            # phase, corrected as soon as the second fresh job lands).
            fresh_rate = self.fresh_completed / elapsed
        eta_rate = fresh_rate if self.fresh_completed > 0 else rate
        eta = remaining / eta_rate if eta_rate > 0 and remaining > 0 else None
        if remaining == 0:
            eta = 0.0
        return ProgressEvent(
            completed=self.completed, total=self.total, status=status,
            label=label, cache_hits=self.cache_hits, errors=self.errors,
            elapsed_seconds=elapsed, solver_seconds=self.solver_seconds,
            rate=rate, eta_seconds=eta,
            build_seconds=self.build_seconds,
            compile_seconds=self.compile_seconds,
            fresh_completed=self.fresh_completed,
            phase_seconds=dict(self.phase_seconds),
        )


def print_progress(event: ProgressEvent) -> None:
    """The CLI's default progress sink: one line per job, on stderr."""
    print(event.render(), file=sys.stderr, flush=True)
