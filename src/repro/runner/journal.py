"""JSONL checkpoint journal: what makes a campaign resumable.

The executor appends one line per settled job (and one header line per
invocation).  Because JSONL is append-only and each line is flushed as
it is written, a campaign killed at any instant leaves a valid prefix:
``--resume`` replays the journal, treats every job whose key has a
successful record as settled, and runs only the remainder.

Resume semantics (documented in docs/operations.md):

* ``done`` / ``cached`` records settle a job -- resume skips it and
  reports it with status ``"resumed"``.
* ``error`` / ``timeout`` records do *not* settle a job -- resume
  retries failures, which is what an operator re-invoking an
  interrupted campaign wants.
* A truncated final line (kill mid-write) is ignored.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

#: Job statuses that settle a job for resume purposes.
SETTLED_STATUSES = ("done", "cached")


class Journal:
    """Append-only JSONL event log for one campaign."""

    def __init__(self, path: str | os.PathLike):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def append(self, record: dict) -> None:
        """Append one event; flushed immediately so kills lose at most it."""
        line = json.dumps(record, sort_keys=True)
        with open(self.path, "a") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def records(self) -> list[dict]:
        """Every parseable record, oldest first (missing file -> empty)."""
        out = []
        try:
            with open(self.path) as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        out.append(json.loads(line))
                    except ValueError:
                        continue  # torn tail from a mid-write kill
        except FileNotFoundError:
            pass
        return out

    def settled(self) -> dict[str, dict]:
        """Job key -> latest successful record, for ``--resume``."""
        done = {}
        for record in self.records():
            if record.get("event") != "job":
                continue
            key = record.get("key")
            if key and record.get("status") in SETTLED_STATUSES:
                done[key] = record
        return done
