"""JSONL checkpoint journal: what makes a campaign resumable.

The executor appends one line per settled job (and one header line per
invocation).  Because JSONL is append-only and each line is flushed as
it is written, a campaign killed at any instant leaves a valid prefix:
``--resume`` replays the journal, treats every job whose key has a
successful record as settled, and runs only the remainder.

Resume semantics (documented in docs/operations.md):

* ``done`` / ``cached`` records settle a job -- resume skips it and
  reports it with status ``"resumed"``.
* ``error`` / ``timeout`` records do *not* settle a job -- resume
  retries failures, which is what an operator re-invoking an
  interrupted campaign wants.

Crash tolerance:

* A truncated final line (kill mid-append) is dropped with one logged
  warning instead of raising -- the record it carried simply re-runs on
  resume.  A torn line *before* the tail would mean real corruption, so
  it is warned about individually but still skipped: resumability beats
  a crash loop.
* :meth:`Journal.append` repairs a torn tail before writing: if the
  file does not end in a newline (the previous writer died mid-line),
  a newline is inserted first so the new record never fuses with the
  wreckage.
* ``fsync=True`` (the default) syncs every append to disk, bounding
  loss to the in-flight record even across a machine crash; pass
  ``fsync=False`` to trade that durability for throughput on very
  chatty campaigns (an OS crash may then lose a few trailing records,
  which resume simply re-runs).
"""

from __future__ import annotations

import json
import logging
import os
from pathlib import Path

from repro.resilience.faults import maybe_fire

logger = logging.getLogger(__name__)

#: Job statuses that settle a job for resume purposes.
SETTLED_STATUSES = ("done", "cached")


class Journal:
    """Append-only JSONL event log for one campaign.

    Args:
        path: The journal file (parent directories are created).
        fsync: Sync every append to disk (default).  Disable for
            throughput when losing a few trailing records to an OS
            crash is acceptable -- resume re-runs them.
    """

    def __init__(self, path: str | os.PathLike, fsync: bool = True):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self._tail_checked = False

    def _repair_torn_tail(self, handle) -> None:
        """Terminate a torn trailing line left by a crashed writer.

        Called once per Journal instance, on first append: if the file
        ends mid-line, write the missing newline so the new record
        starts clean.  (The torn record itself stays in place; reads
        skip it with a warning.)
        """
        if self._tail_checked:
            return
        self._tail_checked = True
        try:
            with open(self.path, "rb") as probe:
                probe.seek(0, os.SEEK_END)
                if probe.tell() == 0:
                    return
                probe.seek(-1, os.SEEK_END)
                last = probe.read(1)
        except FileNotFoundError:
            return
        if last != b"\n":
            handle.write("\n")
            logger.warning(
                "journal %s had a torn trailing line (crash mid-append); "
                "terminated it before appending", self.path,
            )

    def append(self, record: dict) -> None:
        """Append one event; flushed immediately so kills lose at most it."""
        line = json.dumps(record, sort_keys=True)
        if maybe_fire(
            "journal.torn_append",
            key=f"{record.get('event', '?')}:{record.get('key', '')}",
        ):
            # Chaos: the writer dies mid-line -- half the record lands,
            # with no newline.  Reads must drop it; the next append
            # must repair the tail.
            line = line[: max(1, len(line) // 2)]
            with open(self.path, "a") as handle:
                self._repair_torn_tail(handle)
                handle.write(line)
                handle.flush()
            self._tail_checked = False
            return
        with open(self.path, "a") as handle:
            self._repair_torn_tail(handle)
            handle.write(line + "\n")
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())

    def records(self) -> list[dict]:
        """Every parseable record, oldest first (missing file -> empty).

        A torn trailing line (crash mid-append) is dropped with one
        warning; unparseable lines elsewhere are warned about and
        skipped too, so one corrupt record never makes a whole
        campaign's checkpoints unreadable.
        """
        out = []
        try:
            with open(self.path) as handle:
                lines = handle.readlines()
        except FileNotFoundError:
            return out
        last_index = len(lines) - 1
        for index, line in enumerate(lines):
            stripped = line.strip()
            if not stripped:
                continue
            try:
                out.append(json.loads(stripped))
            except ValueError:
                if index == last_index and not line.endswith("\n"):
                    logger.warning(
                        "journal %s: dropped torn trailing line (crash "
                        "mid-append); its record will re-run on resume",
                        self.path,
                    )
                else:
                    logger.warning(
                        "journal %s: skipped unparseable line %d",
                        self.path, index + 1,
                    )
        return out

    def settled(self) -> dict[str, dict]:
        """Job key -> latest successful record, for ``--resume``."""
        done = {}
        for record in self.records():
            if record.get("event") != "job":
                continue
            key = record.get("key")
            if key and record.get("status") in SETTLED_STATUSES:
                done[key] = record
        return done
