"""Content-addressed on-disk result cache for sweep jobs.

A campaign re-solves nothing it has already solved: every job is keyed
by a stable hash of *everything that determines its answer* -- the
serialized topology, demands, paths, the analysis parameters, and a
code-version salt -- and successful results are written to a cache
directory under that key.  Overlapping sweeps (e.g. Figure 5's grid and
Figure 6's CE variant share their baseline rows) and verbatim re-runs
then skip straight to the cached numbers.

Key stability rules:

* The hash is computed over *canonical JSON* (sorted keys, fixed
  separators), so dict ordering and process identity never matter --
  the same payload hashes identically across processes and machines.
* Any change to the topology document, the demand volumes, the path
  set, or any analysis parameter changes the key.
* ``CODE_SALT`` names the semantic version of the job *executor*; bump
  it whenever a change to the analysis code could alter results, and
  every existing cache entry is invalidated at once.

Durability rules (serving a wrong cached number is worse than a miss):

* Writes are atomic (temp file + ``os.replace``) and carry a **sha256
  footer** over the document line, so a torn write, a bit flip, or a
  hand-edited entry is *detectable*, not just unlikely.
* Reads verify the footer.  An unreadable, truncated, checksum-
  mismatched, or otherwise invalid entry is **quarantined** -- renamed
  to ``<key>.corrupt`` for post-mortem inspection -- logged once, and
  treated as a miss, so the job simply re-runs and the fresh result
  overwrites the key.  A corrupt entry can never poison a key forever.
* Footer-less entries written by older versions are still served when
  their JSON parses (they predate the checksum, not the format).
"""

from __future__ import annotations

import hashlib
import json
import logging
import math
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

from repro.exceptions import CacheKeyError
from repro.resilience.faults import maybe_fire

logger = logging.getLogger(__name__)

#: Semantic version of the job execution code.  Part of every cache key:
#: bump on any change that can alter job results so stale entries are
#: never served.
CODE_SALT = "raha-runner-v1"

#: Prefix of the integrity footer line appended to every cache entry.
FOOTER_PREFIX = "sha256:"

#: How long an orphaned ``*.tmp`` write may sit before :meth:`prune`
#: sweeps it.  ``put`` stages entries as ``mkstemp`` temp files and
#: atomically renames them into place; a process killed between the two
#: steps leaves a ``.tmp`` file that no glob of ``*.json`` ever sees, so
#: without the sweep the debris is invisible to ``stats()`` and
#: unreclaimable forever.  The grace period keeps a *live* concurrent
#: ``put`` (created moments ago, rename imminent) safe from the sweep.
TMP_SWEEP_GRACE_SECONDS = 3600.0


def _offending_field(payload, path: str = "$") -> str | None:
    """The path of the first value that breaks canonical JSON, if any.

    Walks the payload in deterministic (sorted-key) order looking for
    non-finite floats and non-JSON types, returning a dotted path like
    ``$.params.threshold`` or ``$.instance.demands[3]``.
    """
    if isinstance(payload, float):
        if math.isnan(payload) or math.isinf(payload):
            return path
        return None
    if isinstance(payload, dict):
        for key in sorted(payload, key=str):
            if not isinstance(key, (str, int, float, bool, type(None))):
                return f"{path}.{key!r}"
            found = _offending_field(payload[key], f"{path}.{key}")
            if found is not None:
                return found
        return None
    if isinstance(payload, (list, tuple)):
        for index, item in enumerate(payload):
            found = _offending_field(item, f"{path}[{index}]")
            if found is not None:
                return found
        return None
    if isinstance(payload, (str, int, bool, type(None))):
        return None
    return path


def canonical_json(payload) -> str:
    """Serialize a payload to its canonical (hashable) JSON form.

    Sorted keys and fixed separators make the encoding independent of
    insertion order; ``allow_nan=False`` rejects values that do not
    round-trip through JSON deterministically.

    Raises:
        CacheKeyError: The payload contains a NaN/Inf float or a
            non-JSON value; the message names the offending field path
            (instead of the bare ``ValueError`` ``json.dumps`` raises,
            which is useless surfacing from deep inside a worker pool).
    """
    try:
        return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                          allow_nan=False)
    except (ValueError, TypeError) as exc:
        field = _offending_field(payload)
        raise CacheKeyError(
            f"payload cannot be content-addressed: non-canonical value "
            f"at {field or '$'} ({exc})"
        ) from exc


def job_key(payload, salt: str = CODE_SALT) -> str:
    """The content address of a job: sha256 over salt + canonical JSON."""
    digest = hashlib.sha256()
    digest.update(salt.encode("utf-8"))
    digest.update(b"\0")
    digest.update(canonical_json(payload).encode("utf-8"))
    return digest.hexdigest()


def _footer_for(document_line: str) -> str:
    """The integrity footer of a serialized document line."""
    return FOOTER_PREFIX + hashlib.sha256(
        document_line.encode("utf-8")
    ).hexdigest()


@dataclass(frozen=True)
class CacheEntry:
    """One on-disk cache entry, as the lifecycle tooling sees it."""

    key: str
    path: Path
    bytes: int
    mtime: float


class ResultCache:
    """A directory of checksummed ``<job key>.json`` result documents.

    Each entry is two lines: the JSON document, then a sha256 footer
    over it.  Writes are atomic (temp file + :func:`os.replace`) so a
    campaign killed mid-write never leaves a torn entry under the key
    -- and if anything *does* corrupt an entry (torn ``put`` from a
    killed process, disk trouble, manual edits), :meth:`get` quarantines
    it to ``<key>.corrupt`` and reports a miss instead of serving or
    raising.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        """Where a key's result document lives."""
        return self.root / f"{key}.json"

    def quarantine_path_for(self, key: str) -> Path:
        """Where a key's corrupt entry is moved for inspection."""
        return self.root / f"{key}.corrupt"

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def quarantined(self) -> list[Path]:
        """Quarantined corrupt entries awaiting inspection (or deletion)."""
        return sorted(self.root.glob("*.corrupt"))

    def get(self, key: str):
        """The cached result for ``key``, or ``None``.

        A torn/corrupt/checksum-mismatched entry is quarantined to
        ``<key>.corrupt`` and treated as a miss: the job re-runs and
        its fresh result overwrites the key.  Entries written before
        the footer existed (single-line valid JSON) are still served.

        The served document must also *claim* the key it is being
        served under (``document["key"] == key``): the checksum footer
        only proves the bytes are intact, so a copied or renamed entry
        -- an operator ``cp``, a botched sync, a filename collision --
        would otherwise silently return the wrong job's result.  A
        mismatch quarantines the entry like any other corruption.
        """
        path = self.path_for(key)
        try:
            with open(path) as handle:
                text = handle.read()
        except FileNotFoundError:
            return None
        except OSError as exc:
            self._quarantine(key, path, f"unreadable ({exc})")
            return None
        document_line, _, footer = text.rstrip("\n").partition("\n")
        if footer:
            if footer.strip() != _footer_for(document_line):
                self._quarantine(key, path, "checksum mismatch")
                return None
        try:
            document = json.loads(document_line)
            stored_key = document.get("key") \
                if isinstance(document, dict) else None
            if stored_key is not None and stored_key != key:
                self._quarantine(
                    key, path,
                    f"key mismatch (entry claims {stored_key!r})")
                return None
            return document["result"]
        except (ValueError, KeyError, TypeError, AttributeError):
            self._quarantine(key, path, "invalid document")
            return None

    def put(self, key: str, result) -> None:
        """Atomically store a successful job result under ``key``."""
        document = {"key": key, "salt": CODE_SALT, "result": result}
        line = json.dumps(document, sort_keys=True)
        body = line + "\n" + _footer_for(line) + "\n"
        if maybe_fire("cache.torn_write", key=key):
            # Chaos: simulate a process killed mid-write that somehow
            # left a partial entry under the final name (the scenario
            # atomic replace exists to prevent; injected to prove get()
            # survives it anyway).
            body = line[: max(1, len(line) // 2)]
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(body)
            os.replace(tmp, self.path_for(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def entries(self) -> list[CacheEntry]:
        """Every entry, oldest mtime first (the eviction order).

        Ties on mtime break by key so the order is deterministic;
        entries that vanish mid-scan (concurrent prune) are skipped.
        """
        out = []
        for path in self.root.glob("*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue
            out.append(CacheEntry(key=path.stem, path=path,
                                  bytes=stat.st_size, mtime=stat.st_mtime))
        return sorted(out, key=lambda e: (e.mtime, e.key))

    def total_bytes(self) -> int:
        """Sum of entry sizes (quarantined files not counted)."""
        return sum(entry.bytes for entry in self.entries())

    def tmp_files(self) -> list[Path]:
        """Staged ``*.tmp`` writes currently on disk.

        Normally transient (a live ``put`` between ``mkstemp`` and the
        atomic rename); anything old is debris from a crashed writer.
        """
        return sorted(self.root.glob("*.tmp"))

    def stats(self) -> dict:
        """Operator-facing summary for ``repro cache stats``."""
        entries = self.entries()
        tmp_bytes = 0
        tmp_count = 0
        for path in self.tmp_files():
            try:
                tmp_bytes += path.stat().st_size
            except OSError:
                continue
            tmp_count += 1
        return {
            "root": str(self.root),
            "entries": len(entries),
            "total_bytes": sum(e.bytes for e in entries),
            "quarantined": len(self.quarantined()),
            "tmp_files": tmp_count,
            "tmp_bytes": tmp_bytes,
            "oldest_mtime": entries[0].mtime if entries else None,
            "newest_mtime": entries[-1].mtime if entries else None,
        }

    def prune(self, max_bytes: int | None = None,
              ttl_seconds: float | None = None,
              protected=(), now: float | None = None,
              tmp_grace_seconds: float = TMP_SWEEP_GRACE_SECONDS) -> dict:
        """Evict entries by age then size; never touch protected keys.

        Policy (``repro cache prune`` and the service's result store):

        1. *Stale-temp sweep*: orphaned ``*.tmp`` staging files older
           than ``tmp_grace_seconds`` are deleted -- debris from a
           writer killed between ``mkstemp`` and the atomic rename,
           which no ``*.json`` glob would ever reclaim.  Younger temp
           files are left alone (they may belong to a live ``put``).
        2. *TTL*: entries whose mtime is older than ``now -
           ttl_seconds`` are removed (``None`` disables).
        3. *Size cap*: while the remaining total exceeds ``max_bytes``,
           the oldest-mtime entry is removed (``None`` disables).

        Keys in ``protected`` (e.g. jobs currently queued or running in
        a live analysis service) are never evicted by either rule, even
        if the size cap cannot be met without them.

        Returns:
            ``{"removed", "removed_bytes", "kept", "kept_bytes",
            "protected_kept", "tmp_removed", "tmp_removed_bytes"}``.
        """
        now = time.time() if now is None else now
        protected = set(protected)
        removed = removed_bytes = 0
        tmp_removed = tmp_removed_bytes = 0
        for path in self.tmp_files():
            try:
                stat = path.stat()
            except OSError:
                continue
            if stat.st_mtime >= now - tmp_grace_seconds:
                continue
            try:
                os.unlink(path)
            except OSError:
                continue
            tmp_removed += 1
            tmp_removed_bytes += stat.st_size
        spared: set[str] = set()  # protected keys a rule would have hit
        survivors = []
        for entry in self.entries():
            expired = (ttl_seconds is not None
                       and entry.mtime < now - ttl_seconds)
            if expired and entry.key not in protected:
                if self._remove(entry):
                    removed += 1
                    removed_bytes += entry.bytes
                continue
            if expired:
                spared.add(entry.key)
            survivors.append(entry)
        if max_bytes is not None:
            kept_bytes = sum(e.bytes for e in survivors)
            remaining = []
            for index, entry in enumerate(survivors):
                if kept_bytes <= max_bytes:
                    remaining.extend(survivors[index:])
                    break
                if entry.key in protected:
                    spared.add(entry.key)
                    remaining.append(entry)
                    continue
                if self._remove(entry):
                    removed += 1
                    removed_bytes += entry.bytes
                    kept_bytes -= entry.bytes
                else:
                    remaining.append(entry)
            survivors = remaining
        return {
            "removed": removed,
            "removed_bytes": removed_bytes,
            "kept": len(survivors),
            "kept_bytes": sum(e.bytes for e in survivors),
            "protected_kept": len(spared),
            "tmp_removed": tmp_removed,
            "tmp_removed_bytes": tmp_removed_bytes,
        }

    def _remove(self, entry: CacheEntry) -> bool:
        try:
            os.unlink(entry.path)
            return True
        except OSError:
            return False

    def _quarantine(self, key: str, path: Path, reason: str) -> None:
        """Move a corrupt entry aside so it cannot poison the key again."""
        target = self.quarantine_path_for(key)
        try:
            os.replace(path, target)
        except OSError:
            # Last resort: a corrupt entry we cannot even rename is
            # deleted rather than left to fail every future get().
            try:
                os.unlink(path)
            except OSError:
                pass
            target = None
        logger.warning(
            "cache entry %s is corrupt (%s); quarantined to %s and "
            "treated as a miss", path.name, reason,
            target.name if target is not None else "nowhere (deleted)",
        )
