"""Content-addressed on-disk result cache for sweep jobs.

A campaign re-solves nothing it has already solved: every job is keyed
by a stable hash of *everything that determines its answer* -- the
serialized topology, demands, paths, the analysis parameters, and a
code-version salt -- and successful results are written to a cache
directory under that key.  Overlapping sweeps (e.g. Figure 5's grid and
Figure 6's CE variant share their baseline rows) and verbatim re-runs
then skip straight to the cached numbers.

Key stability rules:

* The hash is computed over *canonical JSON* (sorted keys, fixed
  separators), so dict ordering and process identity never matter --
  the same payload hashes identically across processes and machines.
* Any change to the topology document, the demand volumes, the path
  set, or any analysis parameter changes the key.
* ``CODE_SALT`` names the semantic version of the job *executor*; bump
  it whenever a change to the analysis code could alter results, and
  every existing cache entry is invalidated at once.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

#: Semantic version of the job execution code.  Part of every cache key:
#: bump on any change that can alter job results so stale entries are
#: never served.
CODE_SALT = "raha-runner-v1"


def canonical_json(payload) -> str:
    """Serialize a payload to its canonical (hashable) JSON form.

    Sorted keys and fixed separators make the encoding independent of
    insertion order; ``allow_nan=False`` rejects values that do not
    round-trip through JSON deterministically.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def job_key(payload, salt: str = CODE_SALT) -> str:
    """The content address of a job: sha256 over salt + canonical JSON."""
    digest = hashlib.sha256()
    digest.update(salt.encode("utf-8"))
    digest.update(b"\0")
    digest.update(canonical_json(payload).encode("utf-8"))
    return digest.hexdigest()


class ResultCache:
    """A directory of ``<job key>.json`` result documents.

    Writes are atomic (temp file + :func:`os.replace`) so a campaign
    killed mid-write never leaves a torn entry for ``--resume`` or a
    later sweep to trip over.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: str) -> Path:
        """Where a key's result document lives."""
        return self.root / f"{key}.json"

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.json"))

    def get(self, key: str):
        """The cached result for ``key``, or ``None``.

        A torn/corrupt entry (which atomic writes should preclude) is
        treated as a miss rather than an error: the job simply re-runs.
        """
        path = self.path_for(key)
        try:
            with open(path) as handle:
                return json.load(handle)["result"]
        except (OSError, ValueError, KeyError):
            return None

    def put(self, key: str, result) -> None:
        """Atomically store a successful job result under ``key``."""
        document = {"key": key, "salt": CODE_SALT, "result": result}
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(document, handle, sort_keys=True)
            os.replace(tmp, self.path_for(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
