"""repro.runner: parallel, cache-aware, resumable sweep execution.

Raha's value comes from answering *many* what-if questions -- thresholds
x topologies x TE heuristics x path configurations.  This package is the
orchestration layer that runs such campaigns at hardware speed instead
of serially:

* :mod:`repro.runner.jobs` -- declarative :class:`SweepSpec` expanding a
  parameter grid into hashable, self-contained :class:`Job` payloads;
* :mod:`repro.runner.executor` -- process-pool execution with per-job
  wall timeouts, bounded retries with exponential backoff and a failure
  budget, structured errors, and deterministic fault injection for
  self-tests (:func:`run_sweep`; ``chaos=`` /
  :mod:`repro.resilience.faults`);
* :mod:`repro.runner.cache` -- content-addressed on-disk result cache
  with checksummed entries (corruption is quarantined, never served),
  so overlapping sweeps and re-runs skip solved jobs;
* :mod:`repro.runner.journal` -- crash-tolerant JSONL checkpointing
  behind ``--resume``;
* :mod:`repro.runner.progress` -- structured throughput/ETA events.

Entry points: ``python -m repro sweep`` (operational campaigns),
:func:`repro.analysis.experiments.degradation_sweep` (the benchmark
grids), or :func:`run_sweep` directly.
"""

from repro.core.config import RunnerConfig, default_num_workers
from repro.runner.cache import CODE_SALT, ResultCache, canonical_json, job_key
from repro.runner.executor import (
    JobOutcome,
    SweepOutcome,
    degradation_task,
    invoke_job,
    resolve_task,
    run_sweep,
)
from repro.runner.jobs import DEFAULT_TASK, Job, SweepSpec
from repro.runner.journal import Journal
from repro.runner.progress import ProgressEvent, ProgressTracker, print_progress

__all__ = [
    "CODE_SALT",
    "DEFAULT_TASK",
    "Job",
    "JobOutcome",
    "Journal",
    "ProgressEvent",
    "ProgressTracker",
    "ResultCache",
    "RunnerConfig",
    "SweepOutcome",
    "SweepSpec",
    "canonical_json",
    "default_num_workers",
    "degradation_task",
    "invoke_job",
    "job_key",
    "print_progress",
    "resolve_task",
    "run_sweep",
]
