"""Parallel, fault-tolerant execution of sweep jobs.

The executor turns a :class:`~repro.runner.jobs.SweepSpec` (or an
explicit job list) into settled :class:`JobOutcome` records:

* **Parallelism** -- jobs run on a :class:`ProcessPoolExecutor`
  (``num_workers > 1``) or in-process (``num_workers == 1``, the
  deterministic-debugging mode).  MILP solves are CPU-bound and the
  GIL-free process pool is what lets a campaign saturate a machine.
* **Timeouts** -- each job gets a wall-clock budget derived from its
  solver ``time_limit`` (:meth:`RunnerConfig.wall_timeout_for`),
  enforced *inside* the worker with a POSIX interval timer so a wedged
  encode or solve cannot pin a pool slot forever.
* **Graceful degradation** -- a job that raises, times out, or hard-
  crashes its worker settles with a *structured error* after bounded
  retries with exponential backoff (deterministically jittered, capped)
  and an optional per-job failure budget; the campaign always
  completes.  A worker crash breaks the whole pool, so recovery
  requeues the casualties free of charge and re-runs them one-per-pool
  to pin the crash on the job that caused it (see :func:`_run_pool`).
* **Caching / resumability** -- before running, each job key is checked
  against the result cache and (under ``resume=True``) the journal;
  hits settle instantly as ``cached`` / ``resumed``.
* **Graceful shutdown** -- ``SIGINT``/``SIGTERM`` (or a caller-provided
  ``stop_event``) drains instead of dying: no new jobs start, in-flight
  attempts settle and journal normally, a final ``interrupted`` journal
  record and progress heartbeat are flushed, and the outcome reports
  ``interrupted=True``.  A second signal aborts hard.  The analysis
  service (:mod:`repro.service`) reuses this for clean drain-on-stop.
* **Chaos self-test** -- ``run_sweep(..., chaos=FaultPlan(...))``
  (or an ambient :func:`repro.resilience.install_plan`) ships a
  deterministic fault plan into every worker; the ``worker.*``
  injection sites in :func:`invoke_job` then crash, wedge, or fail jobs
  at seeded points so the recovery machinery above can be exercised on
  demand (:mod:`repro.resilience.faults`).

Workers receive nothing but the job payload (pure JSON), so any
importable ``module:function`` can serve as a task.  The default task,
:func:`degradation_task`, rebuilds the instance from its serialized
documents and runs one :class:`~repro.core.analyzer.RahaAnalyzer`
analysis -- the same code path as the serial CLI/benchmarks, which is
what makes parallel and serial campaigns numerically identical.
"""

from __future__ import annotations

import importlib
import os
import signal
import threading
import time
import traceback
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    wait as futures_wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.core.config import RunnerConfig
from repro.exceptions import ModelingError, SolverError
from repro.obs.trace import (Tracer, current_tracer, shadow_tracer,
                             unshadow_tracer)
from repro.resilience.faults import FaultPlan, active_plan, install_plan
from repro.runner.cache import ResultCache, job_key
from repro.runner.jobs import Job, SweepSpec
from repro.runner.journal import Journal
from repro.runner.progress import ProgressTracker


@dataclass
class JobOutcome:
    """How one job settled.

    Attributes:
        job: The descriptor (payload + key + label).
        status: ``done`` (solved now), ``cached`` (result cache hit),
            ``resumed`` (journal hit under ``--resume``), ``error`` or
            ``timeout`` (structured failure after retries), or
            ``cancelled`` (a cooperative ``cancel_check`` fired before
            the job settled).
        result: The task's result dict (``None`` on failure).
        error: Human-readable failure description (``None`` on success).
        attempts: Execution attempts consumed (0 for cache/journal hits).
        seconds: Wall time of the final attempt.
        spans: Serialized trace spans from the job's worker process, when
            the campaign ran with tracing enabled (``None`` otherwise).
            These live on the outcome only -- never in the cache or the
            journal, so old caches stay valid and trace runs stay
            byte-compatible with untraced ones.
    """

    job: Job
    status: str
    result: dict | None = None
    error: str | None = None
    attempts: int = 0
    seconds: float = 0.0
    spans: list[dict] | None = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        """Whether the job produced a result."""
        return self.status in ("done", "cached", "resumed")


@dataclass
class SweepOutcome:
    """A settled campaign: one outcome per unique job, in job order.

    Under a graceful shutdown (SIGINT/SIGTERM, or a caller-provided
    ``stop_event``), ``interrupted`` is True and ``outcomes`` holds only
    the jobs that settled before the drain finished -- the rest simply
    re-run under ``--resume``.
    """

    outcomes: list[JobOutcome]
    wall_seconds: float = 0.0
    interrupted: bool = False

    def counts(self) -> dict[str, int]:
        """Status -> how many jobs settled that way."""
        out: dict[str, int] = {}
        for outcome in self.outcomes:
            out[outcome.status] = out.get(outcome.status, 0) + 1
        return out

    @property
    def num_errors(self) -> int:
        """Jobs that settled with a structured error."""
        return sum(1 for o in self.outcomes if not o.ok)

    @property
    def num_cached(self) -> int:
        """Jobs answered without solving (cache or journal)."""
        return sum(1 for o in self.outcomes
                   if o.status in ("cached", "resumed"))

    @property
    def solver_seconds(self) -> float:
        """Total reported solver time across successful jobs."""
        return sum((o.result or {}).get("solve_seconds", 0.0)
                   for o in self.outcomes)

    def stats_totals(self) -> dict[str, float]:
        """Aggregated :class:`SolveStats` telemetry over jobs reporting it.

        Returns:
            ``{"jobs_with_stats", "build_seconds", "compile_seconds",
            "solve_seconds", "max_abs_coefficient"}`` -- the build/compile
            split the sweep summary line prints (zeros when no job
            carried telemetry, e.g. all-cached campaigns from old runs).
        """
        totals = {
            "jobs_with_stats": 0.0,
            "build_seconds": 0.0,
            "compile_seconds": 0.0,
            "solve_seconds": 0.0,
            "max_abs_coefficient": 0.0,
        }
        for outcome in self.outcomes:
            stats = (outcome.result or {}).get("stats")
            if not stats:
                continue
            totals["jobs_with_stats"] += 1
            totals["build_seconds"] += float(stats.get("build_seconds", 0.0))
            totals["compile_seconds"] += float(
                stats.get("compile_seconds", 0.0))
            totals["solve_seconds"] += float(stats.get("solve_seconds", 0.0))
            totals["max_abs_coefficient"] = max(
                totals["max_abs_coefficient"],
                float(stats.get("max_abs_coefficient", 0.0)),
            )
        return totals

    def phase_totals(self) -> dict[str, dict[str, float]]:
        """Per-phase span totals across every traced job.

        Rolls every job's worker spans up by span name --
        ``{"analyze": {"seconds": ..., "count": ...}, "milp_solve": ...}``
        -- the campaign-level view of where wall time went.  Empty when
        the sweep ran without tracing.
        """
        from repro.obs.sinks import phase_totals
        return phase_totals(
            [doc for o in self.outcomes for doc in (o.spans or [])]
        )

    def results(self) -> list[dict]:
        """Result dicts of the successful jobs, in job order."""
        return [o.result for o in self.outcomes if o.ok]

    def errors(self) -> list[JobOutcome]:
        """The failed outcomes."""
        return [o for o in self.outcomes if not o.ok]

    def raise_on_error(self) -> None:
        """Raise :class:`SolverError` if any job failed."""
        failed = self.errors()
        if failed:
            details = "; ".join(
                f"{o.job.label}: {o.error}" for o in failed[:5]
            )
            raise SolverError(
                f"{len(failed)} sweep job(s) failed: {details}"
            )


class _WallTimeout(Exception):
    """Raised by the in-worker interval timer when a job overruns."""


def _on_alarm(signum, frame):
    raise _WallTimeout()


class _StopController:
    """Cooperative-stop plumbing for a campaign.

    Wraps a :class:`threading.Event` and, when asked (and running on the
    main thread, where signal handlers are legal), wires ``SIGINT`` and
    ``SIGTERM`` to it for the duration of a ``with`` block:

    * the **first** signal requests a graceful drain -- no new jobs
      start, in-flight attempts finish, the journal gets a final
      ``interrupted`` record, and a closing progress heartbeat fires;
    * a **second** signal aborts hard (``KeyboardInterrupt``), for the
      operator who meant it.

    Callers that already own a stop signal (the analysis service's
    drain-on-stop) pass their event and opt out of signal handling.
    """

    def __init__(self, stop_event: threading.Event | None,
                 handle_signals: bool):
        self.event = stop_event if stop_event is not None \
            else threading.Event()
        self._handle = (
            handle_signals
            and threading.current_thread() is threading.main_thread()
        )
        self._previous: dict[int, object] = {}

    def __enter__(self) -> "_StopController":
        if self._handle:
            for signum in (signal.SIGINT, signal.SIGTERM):
                try:
                    self._previous[signum] = signal.signal(
                        signum, self._on_signal)
                except (ValueError, OSError, AttributeError):
                    pass
        return self

    def __exit__(self, *exc) -> None:
        for signum, previous in self._previous.items():
            try:
                signal.signal(signum, previous)
            except (ValueError, OSError):
                pass
        self._previous.clear()

    def _on_signal(self, signum, frame) -> None:
        if self.event.is_set():
            raise KeyboardInterrupt
        self.event.set()

    @property
    def stopped(self) -> bool:
        """Whether a drain has been requested."""
        return self.event.is_set()

    def wait(self, seconds: float) -> bool:
        """Sleep up to ``seconds``; True if a stop arrived meanwhile."""
        return self.event.wait(seconds)


def resolve_task(ref: str):
    """Import a ``module:function`` task reference."""
    module_name, _, func_name = ref.partition(":")
    if not module_name or not func_name:
        raise ModelingError(f"bad task reference {ref!r}")
    module = importlib.import_module(module_name)
    try:
        return getattr(module, func_name)
    except AttributeError as exc:
        raise ModelingError(f"task {ref!r} not found") from exc


def _fire_worker_faults(plan: FaultPlan, key: str, attempt: int,
                        in_worker: bool) -> None:
    """Consult the chaos plan's ``worker.*`` sites for this attempt.

    ``worker.crash`` hard-exits the process only when it genuinely is a
    pool worker (``in_worker=True``); in-process it degrades to an
    exception so serial/test runs see a structured error instead of
    the test runner dying.
    """
    if plan.fires("worker.crash", key=key, attempt=attempt):
        if in_worker:
            os._exit(13)
        raise RuntimeError(
            "chaos: injected worker crash (in-process, degraded to error)")
    if plan.fires("worker.timeout", key=key, attempt=attempt):
        raise _WallTimeout()
    if plan.fires("worker.error", key=key, attempt=attempt):
        raise RuntimeError("chaos: injected worker error")
    if plan.fires("worker.hang", key=key, attempt=attempt):
        # A wedged worker: sleeps far past any heartbeat cadence while
        # holding its claim, so the job's lease expires and the service
        # reaper requeues it.  Bounded (overridable via the environment)
        # so chaos tests and CI drains terminate; the eventual wake
        # fails the attempt, and the stale settle is refused upstream.
        hang = float(os.environ.get("REPRO_CHAOS_HANG_SECONDS", "5.0"))
        time.sleep(hang)
        raise RuntimeError(
            f"chaos: injected worker hang (woke after {hang:g}s)")


def invoke_job(payload: dict, wall_timeout: float | None,
               attempt: int = 1, chaos: dict | None = None,
               in_worker: bool = False, trace: bool = False) -> dict:
    """Run one job payload and report success/failure as plain data.

    This is the function worker processes execute.  It never raises:
    task exceptions and wall-timeout overruns come back as structured
    failure dicts so one bad job cannot take down the campaign.  The
    wall timeout uses ``SIGALRM`` (worker processes run tasks on their
    main thread); when signals are unavailable the solver's own
    ``time_limit`` remains the effective bound.

    The interval timer is armed *inside* the ``try`` and the previous
    ``SIGALRM`` disposition is always restored in ``finally`` -- even
    when arming itself fails -- so a caller's signal handling can never
    be corrupted by a job.

    Args:
        payload: The job payload (pure JSON, carries its task ref).
        wall_timeout: Wall-clock budget in seconds, or ``None``.
        attempt: 1-based execution attempt, forwarded so the chaos
            plan can make transient faults (fail attempt 1, pass the
            retry) deterministic.
        chaos: Serialized :class:`FaultPlan` (``plan.to_dict()``)
            shipped across the process boundary; installed as this
            process's active plan for the duration of the job.
        in_worker: True when running inside a dedicated pool worker --
            enables genuinely destructive faults (``worker.crash``
            hard-exits the process).
        trace: Collect structured trace spans for this job.  A fresh
            :class:`~repro.obs.trace.Tracer` shadows the ambient tracer
            for the job's duration -- thread-locally, so a campaign
            tracer in the parent never sees half-merged worker spans
            and sibling threads running serial jobs never clobber each
            other's shadow --
            and its export rides back in the envelope under ``"spans"``
            -- on failures and timeouts too, which is exactly when the
            partial trace is most useful.
    """
    started = time.monotonic()
    job_tracer = Tracer() if trace else None
    # Thread-local shadow, not a global install: sibling threads each
    # running serial jobs must not clobber each other's (or the
    # process's) ambient tracer.
    previous_tracer = shadow_tracer(job_tracer) if trace else None

    def envelope(doc: dict) -> dict:
        if job_tracer is not None:
            doc["spans"] = job_tracer.export()
        return doc

    use_alarm = (
        wall_timeout is not None
        and hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )
    unset = object()
    previous = unset
    if chaos is not None:
        # Shipped across a process boundary: install for the job's
        # duration so in-task sites (solver.time_limit, ...) fire too.
        plan = FaultPlan.from_dict(chaos)
        previous_plan = install_plan(plan)
        plan_installed = True
    else:
        # In-process call: share the ambient plan (and its fire
        # counters) rather than shadowing it with a fresh copy.
        plan = active_plan()
        plan_installed = False
    try:
        if use_alarm:
            previous = signal.signal(signal.SIGALRM, _on_alarm)
            signal.setitimer(signal.ITIMER_REAL, wall_timeout)
        if plan is not None:
            _fire_worker_faults(plan, job_key(payload), attempt, in_worker)
        task = resolve_task(payload["task"])
        result = task(payload)
        return envelope({"ok": True, "result": result,
                         "seconds": time.monotonic() - started})
    except _WallTimeout:
        error = ("job timed out (chaos-injected)" if wall_timeout is None
                 else f"job exceeded its wall timeout of {wall_timeout:g}s")
        return envelope({
            "ok": False, "status": "timeout",
            "error": error,
            "seconds": time.monotonic() - started,
        })
    except Exception as exc:
        return envelope({
            "ok": False, "status": "error",
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
            "seconds": time.monotonic() - started,
        })
    finally:
        if previous is not unset:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)
        if plan_installed:
            install_plan(previous_plan)
        if trace:
            unshadow_tracer(previous_tracer)


def degradation_task(payload: dict) -> dict:
    """The default task: one Raha degradation analysis per job.

    Rebuilds the topology/demands/paths from the payload's embedded
    documents, assembles a :class:`~repro.core.config.RahaConfig` from
    the parameter cell, and runs the analyzer -- byte-for-byte the
    serial code path, so a parallel sweep reproduces serial numbers.

    With ``params["allow_partial"]`` truthy, an incumbent-free solver
    time limit degrades to a partial-result dict (``"partial": True``
    with a ``degradation_bound`` from the LP relaxation and its
    provenance) instead of failing the job -- see
    :class:`~repro.core.config.ResilienceConfig`.
    """
    from repro.core.analyzer import RahaAnalyzer
    from repro.core.config import RahaConfig, ResilienceConfig
    from repro.network import serialization as ser
    from repro.network.demand import demand_envelope

    instance = payload["instance"]
    params = payload["params"]
    topology = ser.topology_from_dict(instance["topology"])
    paths = _resolve_paths(topology, instance, params)
    mode = params.get("demand_mode", "fixed")

    def demands_for(*keys):
        for key in keys:
            if instance.get(key) is not None:
                return ser.demands_from_dict(instance[key])
        raise ModelingError(
            f"demand mode {mode!r} needs one of {keys} in the instance"
        )

    kwargs = dict(
        objective=params.get("objective", "total_flow"),
        probability_threshold=params.get("threshold"),
        max_failures=params.get("max_failures"),
        connected_enforced=bool(params.get("connected_enforced", False)),
        time_limit=params.get("time_limit", 1000.0),
        mip_rel_gap=params.get("mip_rel_gap"),
    )
    if params.get("allow_partial"):
        kwargs["resilience"] = ResilienceConfig(allow_partial=True)
    if mode == "avg":
        config = RahaConfig(
            fixed_demands=dict(demands_for("avg_demands", "demands")),
            **kwargs)
    elif mode in ("max", "fixed"):
        config = RahaConfig(
            fixed_demands=dict(demands_for("peak_demands", "demands")),
            **kwargs)
    elif mode == "variable":
        demands = demands_for("peak_demands", "demands")
        config = RahaConfig(
            demand_bounds=demand_envelope(
                demands, slack=params.get("slack", 0.0)),
            **kwargs)
    else:
        raise ModelingError(f"unknown demand mode {mode!r}")

    result = RahaAnalyzer(topology, paths, config).analyze()
    if result.is_partial:
        return {
            "demand_mode": mode,
            "threshold": params.get("threshold"),
            "max_failures": params.get("max_failures"),
            "connected_enforced": kwargs["connected_enforced"],
            "objective": kwargs["objective"],
            "partial": True,
            "status": result.status,
            "degradation_bound": result.bound,
            "normalized_bound": result.normalized_bound,
            "provenance": list(result.provenance),
            "time_limits_tried": list(result.time_limits_tried),
            "solve_seconds": result.solve_seconds,
            "encode_seconds": result.encode_seconds,
            "stats": result.solver_stats,
        }
    return {
        "demand_mode": mode,
        "threshold": params.get("threshold"),
        "max_failures": params.get("max_failures"),
        "connected_enforced": kwargs["connected_enforced"],
        "objective": kwargs["objective"],
        "degradation": result.degradation,
        "normalized_degradation": result.normalized_degradation,
        "healthy_value": result.healthy_value,
        "failed_value": result.failed_value,
        "scenario_probability": result.scenario_probability,
        "num_failed_links": result.scenario.num_failed_links,
        "status": result.status,
        "verified": result.verified,
        "solve_seconds": result.solve_seconds,
        "encode_seconds": result.encode_seconds,
        "stats": result.solver_stats,
    }


def _resolve_paths(topology, instance: dict, params: dict):
    """A job's path set: embedded document, or computed in the worker."""
    from repro.network.demand import all_pairs
    from repro.network import serialization as ser

    if instance.get("paths") is not None:
        return ser.paths_from_dict(instance["paths"])
    path_config = instance.get("path_config")
    if path_config is None:
        raise ModelingError(
            "the instance needs either a 'paths' document or a "
            "'path_config' ({pairs, num_primary, num_backup, weighted})"
        )
    pairs = path_config.get("pairs", "all")
    if pairs == "all":
        pairs = all_pairs(topology)
    else:
        pairs = [tuple(pair) for pair in pairs]
    num_primary = int(path_config.get("num_primary", 2))
    num_backup = int(path_config.get("num_backup", 1))
    if path_config.get("weighted"):
        from repro.paths.weighted import diversity_weighted_paths

        return diversity_weighted_paths(
            topology, pairs, num_primary=num_primary, num_backup=num_backup)
    from repro.paths.pathset import PathSet

    return PathSet.k_shortest(
        topology, pairs, num_primary=num_primary, num_backup=num_backup)


#: How often the pooled wait loop re-polls a caller's ``cancel_check``
#: while futures are in flight (only when one is installed; without it
#: the loop blocks until a future completes, exactly as before).
_CANCEL_POLL_SECONDS = 0.1


@dataclass
class _Campaign:
    """Mutable bookkeeping shared by the serial and pooled loops."""

    config: RunnerConfig
    cache: ResultCache | None
    journal: Journal | None
    tracker: ProgressTracker
    progress: object  # callable(ProgressEvent) or None
    outcomes: dict[str, JobOutcome] = field(default_factory=dict)
    #: Serialized fault plan shipped with every pool submission, or None.
    chaos_doc: dict | None = None
    #: The campaign tracer (the ambient NULL_TRACER when tracing is off).
    tracer: object = None
    #: Cooperative-stop controller (graceful shutdown / service drain).
    stop: _StopController = field(
        default_factory=lambda: _StopController(None, False))
    #: Cooperative-cancel callable polled between job dispatches (the
    #: analysis service's DELETE-a-running-analysis path); None = never.
    cancel_check: object = None

    @property
    def trace_jobs(self) -> bool:
        """Whether workers should collect and ship spans."""
        return self.tracer is not None and self.tracer.enabled

    def cancel_requested(self) -> bool:
        """Whether the caller's cancel flag has been raised."""
        return bool(self.cancel_check is not None and self.cancel_check())

    def settle(self, job: Job, outcome: JobOutcome) -> None:
        self.outcomes[job.key] = outcome
        if self.journal is not None:
            self.journal.append({
                "event": "job",
                "key": job.key,
                "label": job.label,
                "status": outcome.status,
                "result": outcome.result if outcome.ok else None,
                "error": outcome.error,
                "attempts": outcome.attempts,
                "seconds": round(outcome.seconds, 6),
            })
        if outcome.status == "done" and self.cache is not None:
            self.cache.put(job.key, outcome.result)
        if self.trace_jobs:
            # The job's wall time was measured in the worker; record it
            # retroactively and hang the worker's spans beneath it,
            # re-id'd with the job key so two workers' ids never collide.
            parent = self.tracer.record(
                "job", outcome.seconds, key=job.key, label=job.label,
                status=outcome.status, attempts=outcome.attempts,
            )
            if outcome.spans:
                self.tracer.merge(outcome.spans, parent_id=parent,
                                  prefix=f"{job.key}:")
        event = self.tracker.note(
            outcome.status, job.label,
            solver_seconds=(outcome.result or {}).get("solve_seconds", 0.0),
            stats=(outcome.result or {}).get("stats"),
            spans=outcome.spans,
        )
        if self.progress is not None:
            self.progress(event)


def _wall_timeout_for(job: Job, explicit: float | None,
                      config: RunnerConfig) -> float | None:
    if explicit is not None:
        return explicit
    return config.wall_timeout_for(job.params.get("time_limit"))


def run_sweep(
    spec_or_jobs,
    *,
    num_workers: int | None = None,
    cache: ResultCache | str | os.PathLike | None = None,
    journal: Journal | str | os.PathLike | None = None,
    resume: bool = False,
    wall_timeout: float | None = None,
    progress=None,
    config: RunnerConfig | None = None,
    chaos: FaultPlan | dict | None = None,
    tracer=None,
    stop_event: threading.Event | None = None,
    handle_signals: bool = True,
    cancel_check=None,
    attempt_base: int = 0,
) -> SweepOutcome:
    """Run a campaign to completion and return every job's outcome.

    Args:
        spec_or_jobs: A :class:`SweepSpec` or an iterable of
            :class:`Job`; duplicate job keys are collapsed.
        num_workers: Worker processes (overrides ``config``); ``1``
            executes in-process.
        cache: Result cache (or a directory path for one); successful
            jobs are written through, and hits settle as ``cached``.
        journal: Checkpoint journal (or a path for one); every settled
            job is appended, making the campaign resumable.
        resume: Replay the journal first and skip settled jobs
            (``done``/``cached`` records; failures re-run).
        wall_timeout: Per-job wall budget override in seconds; default
            derives from each job's ``time_limit`` via ``config``.
        progress: Callback receiving a
            :class:`~repro.runner.progress.ProgressEvent` per settled job.
        config: Runner knobs (:class:`~repro.core.config.RunnerConfig`).
        chaos: A :class:`~repro.resilience.FaultPlan` (or its
            ``to_dict()`` form) to inject deterministic faults: it is
            installed as this process's active plan for the duration of
            the sweep (cache/journal sites) and shipped into every
            worker (worker/solver sites).  When omitted, a plan already
            installed via :func:`repro.resilience.install_plan` /
            ``injected()`` is picked up and shipped the same way.  No
            plan anywhere means the chaos path is completely inert.
        tracer: A :class:`~repro.obs.trace.Tracer` collecting the
            campaign trace.  When omitted, the ambient tracer
            (:func:`repro.obs.trace.current_tracer`) is used -- the
            no-op default unless the caller installed one, so untraced
            sweeps pay nothing.  With tracing on, every job runs with
            ``invoke_job(..., trace=True)``: the worker collects spans
            and ships them back in its envelope, and the parent merges
            them under per-job spans inside one ``sweep`` root span.
        stop_event: A :class:`threading.Event` requesting a graceful
            drain: once set, no new jobs start, in-flight attempts
            finish and settle (journaled as usual), the journal gets a
            final ``interrupted`` record, and the outcome comes back
            with ``interrupted=True``.  The analysis service passes its
            own event here for drain-on-stop.
        handle_signals: Wire ``SIGINT``/``SIGTERM`` to the stop event
            for the duration of the sweep (main thread only; the
            previous dispositions are restored on exit).  The first
            signal drains gracefully -- so an interrupt can no longer
            lose the tail of the resume journal -- and a second one
            aborts hard with :class:`KeyboardInterrupt`.
        cancel_check: Optional zero-argument callable polled between
            job dispatches (every :data:`_CANCEL_POLL_SECONDS` while
            pool futures are in flight).  Once it returns True, every
            unsettled job settles with status ``cancelled`` and
            in-flight worker attempts are abandoned (their processes
            finish their current task and exit; no result is recorded).
            Unlike ``stop_event`` -- which *drains* (in-flight attempts
            settle normally, unstarted jobs stay unsettled for resume)
            -- a cancel is an answer: the jobs settle, as cancelled.
            The analysis service polls its store's per-job
            ``cancel_requested`` flag through this.
        attempt_base: Start every job's attempt numbering here instead
            of at zero.  The analysis service passes its store-level
            claim count, so attempt numbers -- which key both the retry
            budget and the chaos plan's ``attempts`` matching -- stay
            continuous across crashes, restarts, and lease reaps: a
            fault scoped to ``attempts: [1]`` fires once per *job*,
            not once per claim of it.

    Returns:
        A :class:`SweepOutcome`; inspect ``.errors()`` or call
        ``.raise_on_error()`` depending on whether partial results are
        acceptable.
    """
    config = config or RunnerConfig()
    workers = num_workers if num_workers is not None \
        else config.resolved_workers()
    if workers < 1:
        raise ModelingError(f"num_workers must be >= 1, got {workers}")
    if isinstance(cache, (str, os.PathLike)):
        cache = ResultCache(cache)
    if isinstance(journal, (str, os.PathLike)):
        journal = Journal(journal)

    if isinstance(spec_or_jobs, SweepSpec):
        jobs = spec_or_jobs.expand()
    else:
        jobs, seen = [], set()
        for job in spec_or_jobs:
            if job.key not in seen:
                seen.add(job.key)
                jobs.append(job)

    if chaos is not None:
        plan = chaos if isinstance(chaos, FaultPlan) \
            else FaultPlan.from_dict(chaos)
        previous_plan = install_plan(plan)
        plan_installed = True
    else:
        plan = active_plan()
        previous_plan = None
        plan_installed = False

    started = time.monotonic()
    stopper = _StopController(stop_event, handle_signals)
    campaign = _Campaign(
        config=config, cache=cache, journal=journal,
        tracker=ProgressTracker(total=len(jobs)), progress=progress,
        chaos_doc=plan.to_dict() if plan is not None else None,
        tracer=tracer if tracer is not None else current_tracer(),
        stop=stopper,
        cancel_check=cancel_check,
    )
    try:
        # ``concurrent`` tells the trace validator that this span's
        # children (the per-job spans) may overlap in wall time, so
        # their durations legitimately sum past the parent's.
        with stopper, campaign.tracer.span(
            "sweep", total=len(jobs), workers=workers,
            concurrent=workers > 1,
        ):
            if journal is not None:
                settled_records = journal.settled() if resume else {}
                journal.append({
                    "event": "campaign", "total": len(jobs),
                    "workers": workers, "resume": resume,
                })
            else:
                settled_records = {}

            pending: list[Job] = []
            for job in jobs:
                record = settled_records.get(job.key)
                if record is not None:
                    campaign.settle(job, JobOutcome(
                        job=job, status="resumed",
                        result=record.get("result"),
                    ))
                    continue
                cached = cache.get(job.key) if cache is not None else None
                if cached is not None:
                    campaign.settle(job, JobOutcome(
                        job=job, status="cached", result=cached,
                    ))
                    continue
                pending.append(job)

            if pending and not stopper.stopped:
                if workers == 1:
                    _run_serial(pending, campaign, wall_timeout,
                                attempt_base)
                else:
                    _run_pool(pending, campaign, wall_timeout, workers,
                              attempt_base)

            if stopper.stopped:
                # Drain epilogue: flush a terminal journal record (so
                # the on-disk tail marks a clean interruption, not a
                # crash) and emit one closing heartbeat.
                if journal is not None:
                    journal.append({
                        "event": "interrupted",
                        "settled": len(campaign.outcomes),
                        "total": len(jobs),
                    })
                if progress is not None:
                    progress(campaign.tracker.snapshot(
                        "interrupted",
                        f"drained: {len(campaign.outcomes)}/{len(jobs)} "
                        f"settled, journal flushed",
                    ))
    finally:
        if plan_installed:
            install_plan(previous_plan)

    return SweepOutcome(
        outcomes=[campaign.outcomes[job.key] for job in jobs
                  if job.key in campaign.outcomes],
        wall_seconds=time.monotonic() - started,
        interrupted=stopper.stopped,
    )


def _cancelled_outcome(job: Job) -> JobOutcome:
    return JobOutcome(job=job, status="cancelled",
                      error="cancelled by client (cooperative cancel)")


def _outcome_from(job: Job, res: dict, attempts: int) -> JobOutcome:
    if res["ok"]:
        return JobOutcome(job=job, status="done", result=res["result"],
                          attempts=attempts, seconds=res["seconds"],
                          spans=res.get("spans"))
    return JobOutcome(job=job, status=res.get("status", "error"),
                      error=res.get("error"), attempts=attempts,
                      seconds=res.get("seconds", 0.0),
                      spans=res.get("spans"))


def _charge_failure(job: Job, res: dict, attempt: int,
                    failed_seconds: float,
                    config: RunnerConfig) -> JobOutcome | None:
    """Decide the fate of a failed attempt: settle now, or retry.

    Returns a settled :class:`JobOutcome` when the job has spent its
    retry count *or* its failure budget (cumulative wall seconds of
    failed attempts, ``RunnerConfig.failure_budget_seconds``), else
    ``None`` meaning "retry after backoff".  Budget exhaustion is
    recorded in the error text so the operator can tell a poisonous
    job from an unlucky one.
    """
    if attempt > config.retries:
        return _outcome_from(job, res, attempt)
    if (config.failure_budget_seconds is not None
            and failed_seconds >= config.failure_budget_seconds):
        res = dict(res)
        res["error"] = (
            f"{res.get('error')}; failure budget exhausted "
            f"({failed_seconds:.3f}s of failed attempts >= "
            f"{config.failure_budget_seconds:g}s budget, "
            f"after attempt {attempt})")
        return _outcome_from(job, res, attempt)
    return None


def _run_serial(pending: list[Job], campaign: _Campaign,
                wall_timeout: float | None,
                attempt_base: int = 0) -> None:
    """In-process execution with the same retry/timeout semantics."""
    config = campaign.config
    for job in pending:
        if campaign.stop.stopped:
            return
        if campaign.cancel_requested():
            campaign.settle(job, _cancelled_outcome(job))
            continue
        attempt = attempt_base
        failed_seconds = 0.0
        while True:
            attempt += 1
            res = invoke_job(job.payload,
                             _wall_timeout_for(job, wall_timeout, config),
                             attempt=attempt, trace=campaign.trace_jobs)
            if res["ok"]:
                campaign.settle(job, _outcome_from(job, res, attempt))
                break
            failed_seconds += res.get("seconds", 0.0)
            settled = _charge_failure(job, res, attempt, failed_seconds,
                                      config)
            if settled is not None:
                campaign.settle(job, settled)
                break
            # A cancel between attempts settles the job as cancelled
            # instead of spending its remaining retries.
            if campaign.cancel_requested():
                campaign.settle(job, _cancelled_outcome(job))
                break
            # A drain request also abandons this job's remaining
            # retries -- it stays unsettled and re-runs on resume.
            if campaign.stop.wait(config.backoff_delay(attempt,
                                                       key=job.key)):
                return


def _run_pool(pending: list[Job], campaign: _Campaign,
              wall_timeout: float | None, workers: int,
              attempt_base: int = 0) -> None:
    """Pooled execution in rounds; survives hard worker crashes.

    A worker crash (segfault, OOM kill, ``os._exit``) breaks the whole
    :class:`ProcessPoolExecutor`, failing every in-flight future -- so
    the crasher cannot be identified from the wreckage, and innocent
    co-scheduled jobs must not be charged for it.  The recovery
    protocol therefore has two phases:

    1. *Parallel rounds*: all queued jobs share one pool.  Genuine
       failures (a task raised or timed out inside its worker) consume
       a retry; broken-pool casualties are requeued **without** losing
       an attempt.
    2. *Isolation rounds* (entered after a break): each suspect runs in
       its own single-worker pool, so a crash is attributable to
       exactly one job, which then pays the attempt.  Poisonous jobs
       settle as structured errors after their retry budget; everyone
       else completes normally.
    """
    config = campaign.config
    attempts = {job.key: attempt_base for job in pending}
    failed_seconds = {job.key: 0.0 for job in pending}
    queue = list(pending)
    isolate = False
    round_number = 0
    while queue and not campaign.stop.stopped:
        if campaign.cancel_requested():
            for job in queue:
                campaign.settle(job, _cancelled_outcome(job))
            return
        if isolate:
            queue = _isolation_round(queue, attempts, failed_seconds,
                                     campaign, wall_timeout)
        else:
            queue, broke = _parallel_round(queue, attempts, failed_seconds,
                                           campaign, wall_timeout, workers)
            isolate = broke
        if queue:
            round_number += 1
            if campaign.stop.wait(config.backoff_delay(round_number,
                                                       key="pool-round")):
                return


def _settle_or_requeue(job, res, attempts, failed_seconds, campaign,
                       requeue) -> None:
    """Charge one completed pool attempt and settle or requeue the job."""
    attempts[job.key] += 1
    if res["ok"]:
        campaign.settle(job, _outcome_from(job, res, attempts[job.key]))
        return
    failed_seconds[job.key] += res.get("seconds", 0.0)
    settled = _charge_failure(job, res, attempts[job.key],
                              failed_seconds[job.key], campaign.config)
    if settled is not None:
        campaign.settle(job, settled)
    else:
        requeue.append(job)


def _parallel_round(queue, attempts, failed_seconds, campaign,
                    wall_timeout, workers):
    """One shared-pool pass.  Returns (requeue, pool_broke).

    Without a ``cancel_check`` the wait loop blocks until a future
    completes -- byte-for-byte the historical behavior.  With one, it
    wakes every :data:`_CANCEL_POLL_SECONDS` to poll the flag; a cancel
    settles every unfinished job as ``cancelled`` and abandons the pool
    without waiting for in-flight attempts (their worker processes
    finish the current task and exit; no result is recorded).
    """
    config = campaign.config
    requeue: list[Job] = []
    broke = False
    abandoned = False
    pool = ProcessPoolExecutor(max_workers=min(workers, len(queue)))
    try:
        futures = {
            pool.submit(invoke_job, job.payload,
                        _wall_timeout_for(job, wall_timeout, config),
                        attempts[job.key] + 1, campaign.chaos_doc,
                        True, campaign.trace_jobs): job
            for job in queue
        }
        poll = _CANCEL_POLL_SECONDS if campaign.cancel_check is not None \
            else None
        not_done = set(futures)
        drained = False
        while not_done:
            done_now, not_done = futures_wait(
                not_done, timeout=poll, return_when=FIRST_COMPLETED)
            if campaign.stop.stopped and not drained:
                # Graceful drain: unstarted jobs are cancelled (they
                # stay unsettled and re-run on resume); in-flight
                # attempts run to completion and settle normally.
                drained = True
                for pending_future in not_done:
                    pending_future.cancel()
            if not done_now and campaign.cancel_requested():
                for pending_future in not_done:
                    pending_future.cancel()
                # Settle by bookkeeping, not by future state: a future
                # can complete between the wait returning empty and
                # this branch, and keying off ``future.done()`` would
                # skip that job entirely -- neither processed nor
                # cancelled, leaving the sweep with a missing outcome.
                # Every job not already settled (or queued for a
                # requeue round, which the outer loop cancels) settles
                # as cancelled here.
                requeued_keys = {job.key for job in requeue}
                for job in futures.values():
                    if job.key not in campaign.outcomes \
                            and job.key not in requeued_keys:
                        campaign.settle(job, _cancelled_outcome(job))
                abandoned = True
                return requeue, broke
            for future in done_now:
                job = futures[future]
                if future.cancelled():
                    continue
                try:
                    res = future.result()
                except BrokenProcessPool:
                    # Collateral or culprit -- unknowable here.  Requeue
                    # for an isolation round, free of charge.
                    broke = True
                    requeue.append(job)
                    continue
                except Exception as exc:  # pickling errors etc.
                    res = {"ok": False, "status": "error",
                           "error": f"{type(exc).__name__}: {exc}",
                           "seconds": 0.0}
                _settle_or_requeue(job, res, attempts, failed_seconds,
                                   campaign, requeue)
    finally:
        pool.shutdown(wait=not abandoned, cancel_futures=abandoned)
    return requeue, broke


def _isolation_round(queue, attempts, failed_seconds, campaign,
                     wall_timeout):
    """One-job-per-pool pass: crashes are attributable, so they pay."""
    config = campaign.config
    requeue: list[Job] = []
    for job in queue:
        if campaign.stop.stopped:
            return requeue
        if campaign.cancel_requested():
            campaign.settle(job, _cancelled_outcome(job))
            continue
        with ProcessPoolExecutor(max_workers=1) as pool:
            future = pool.submit(
                invoke_job, job.payload,
                _wall_timeout_for(job, wall_timeout, config),
                attempts[job.key] + 1, campaign.chaos_doc, True,
                campaign.trace_jobs)
            try:
                res = future.result()
            except BrokenProcessPool:
                res = {"ok": False, "status": "error",
                       "error": "worker process crashed (hard exit while "
                                "running this job)",
                       "seconds": 0.0}
            except Exception as exc:
                res = {"ok": False, "status": "error",
                       "error": f"{type(exc).__name__}: {exc}",
                       "seconds": 0.0}
        _settle_or_requeue(job, res, attempts, failed_seconds,
                           campaign, requeue)
    return requeue
