"""Parallel, fault-tolerant execution of sweep jobs.

The executor turns a :class:`~repro.runner.jobs.SweepSpec` (or an
explicit job list) into settled :class:`JobOutcome` records:

* **Parallelism** -- jobs run on a :class:`ProcessPoolExecutor`
  (``num_workers > 1``) or in-process (``num_workers == 1``, the
  deterministic-debugging mode).  MILP solves are CPU-bound and the
  GIL-free process pool is what lets a campaign saturate a machine.
* **Timeouts** -- each job gets a wall-clock budget derived from its
  solver ``time_limit`` (:meth:`RunnerConfig.wall_timeout_for`),
  enforced *inside* the worker with a POSIX interval timer so a wedged
  encode or solve cannot pin a pool slot forever.
* **Graceful degradation** -- a job that raises, times out, or hard-
  crashes its worker settles with a *structured error* after bounded
  retries with linear backoff; the campaign always completes.  A
  worker crash breaks the whole pool, so recovery requeues the
  casualties free of charge and re-runs them one-per-pool to pin the
  crash on the job that caused it (see :func:`_run_pool`).
* **Caching / resumability** -- before running, each job key is checked
  against the result cache and (under ``resume=True``) the journal;
  hits settle instantly as ``cached`` / ``resumed``.

Workers receive nothing but the job payload (pure JSON), so any
importable ``module:function`` can serve as a task.  The default task,
:func:`degradation_task`, rebuilds the instance from its serialized
documents and runs one :class:`~repro.core.analyzer.RahaAnalyzer`
analysis -- the same code path as the serial CLI/benchmarks, which is
what makes parallel and serial campaigns numerically identical.
"""

from __future__ import annotations

import importlib
import os
import signal
import threading
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.core.config import RunnerConfig
from repro.exceptions import ModelingError, SolverError
from repro.runner.cache import ResultCache
from repro.runner.jobs import Job, SweepSpec
from repro.runner.journal import Journal
from repro.runner.progress import ProgressTracker


@dataclass
class JobOutcome:
    """How one job settled.

    Attributes:
        job: The descriptor (payload + key + label).
        status: ``done`` (solved now), ``cached`` (result cache hit),
            ``resumed`` (journal hit under ``--resume``), ``error`` or
            ``timeout`` (structured failure after retries).
        result: The task's result dict (``None`` on failure).
        error: Human-readable failure description (``None`` on success).
        attempts: Execution attempts consumed (0 for cache/journal hits).
        seconds: Wall time of the final attempt.
    """

    job: Job
    status: str
    result: dict | None = None
    error: str | None = None
    attempts: int = 0
    seconds: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether the job produced a result."""
        return self.status in ("done", "cached", "resumed")


@dataclass
class SweepOutcome:
    """A settled campaign: one outcome per unique job, in job order."""

    outcomes: list[JobOutcome]
    wall_seconds: float = 0.0

    def counts(self) -> dict[str, int]:
        """Status -> how many jobs settled that way."""
        out: dict[str, int] = {}
        for outcome in self.outcomes:
            out[outcome.status] = out.get(outcome.status, 0) + 1
        return out

    @property
    def num_errors(self) -> int:
        """Jobs that settled with a structured error."""
        return sum(1 for o in self.outcomes if not o.ok)

    @property
    def num_cached(self) -> int:
        """Jobs answered without solving (cache or journal)."""
        return sum(1 for o in self.outcomes
                   if o.status in ("cached", "resumed"))

    @property
    def solver_seconds(self) -> float:
        """Total reported solver time across successful jobs."""
        return sum((o.result or {}).get("solve_seconds", 0.0)
                   for o in self.outcomes)

    def stats_totals(self) -> dict[str, float]:
        """Aggregated :class:`SolveStats` telemetry over jobs reporting it.

        Returns:
            ``{"jobs_with_stats", "build_seconds", "compile_seconds",
            "solve_seconds", "max_abs_coefficient"}`` -- the build/compile
            split the sweep summary line prints (zeros when no job
            carried telemetry, e.g. all-cached campaigns from old runs).
        """
        totals = {
            "jobs_with_stats": 0.0,
            "build_seconds": 0.0,
            "compile_seconds": 0.0,
            "solve_seconds": 0.0,
            "max_abs_coefficient": 0.0,
        }
        for outcome in self.outcomes:
            stats = (outcome.result or {}).get("stats")
            if not stats:
                continue
            totals["jobs_with_stats"] += 1
            totals["build_seconds"] += float(stats.get("build_seconds", 0.0))
            totals["compile_seconds"] += float(
                stats.get("compile_seconds", 0.0))
            totals["solve_seconds"] += float(stats.get("solve_seconds", 0.0))
            totals["max_abs_coefficient"] = max(
                totals["max_abs_coefficient"],
                float(stats.get("max_abs_coefficient", 0.0)),
            )
        return totals

    def results(self) -> list[dict]:
        """Result dicts of the successful jobs, in job order."""
        return [o.result for o in self.outcomes if o.ok]

    def errors(self) -> list[JobOutcome]:
        """The failed outcomes."""
        return [o for o in self.outcomes if not o.ok]

    def raise_on_error(self) -> None:
        """Raise :class:`SolverError` if any job failed."""
        failed = self.errors()
        if failed:
            details = "; ".join(
                f"{o.job.label}: {o.error}" for o in failed[:5]
            )
            raise SolverError(
                f"{len(failed)} sweep job(s) failed: {details}"
            )


class _WallTimeout(Exception):
    """Raised by the in-worker interval timer when a job overruns."""


def _on_alarm(signum, frame):
    raise _WallTimeout()


def resolve_task(ref: str):
    """Import a ``module:function`` task reference."""
    module_name, _, func_name = ref.partition(":")
    if not module_name or not func_name:
        raise ModelingError(f"bad task reference {ref!r}")
    module = importlib.import_module(module_name)
    try:
        return getattr(module, func_name)
    except AttributeError as exc:
        raise ModelingError(f"task {ref!r} not found") from exc


def invoke_job(payload: dict, wall_timeout: float | None) -> dict:
    """Run one job payload and report success/failure as plain data.

    This is the function worker processes execute.  It never raises:
    task exceptions and wall-timeout overruns come back as structured
    failure dicts so one bad job cannot take down the campaign.  The
    wall timeout uses ``SIGALRM`` (worker processes run tasks on their
    main thread); when signals are unavailable the solver's own
    ``time_limit`` remains the effective bound.
    """
    started = time.monotonic()
    use_alarm = (
        wall_timeout is not None
        and hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )
    previous = None
    if use_alarm:
        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, wall_timeout)
    try:
        task = resolve_task(payload["task"])
        result = task(payload)
        return {"ok": True, "result": result,
                "seconds": time.monotonic() - started}
    except _WallTimeout:
        return {
            "ok": False, "status": "timeout",
            "error": f"job exceeded its wall timeout of {wall_timeout:g}s",
            "seconds": time.monotonic() - started,
        }
    except Exception as exc:
        return {
            "ok": False, "status": "error",
            "error": f"{type(exc).__name__}: {exc}",
            "traceback": traceback.format_exc(),
            "seconds": time.monotonic() - started,
        }
    finally:
        if use_alarm:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)


def degradation_task(payload: dict) -> dict:
    """The default task: one Raha degradation analysis per job.

    Rebuilds the topology/demands/paths from the payload's embedded
    documents, assembles a :class:`~repro.core.config.RahaConfig` from
    the parameter cell, and runs the analyzer -- byte-for-byte the
    serial code path, so a parallel sweep reproduces serial numbers.
    """
    from repro.core.analyzer import RahaAnalyzer
    from repro.core.config import RahaConfig
    from repro.network import serialization as ser
    from repro.network.demand import demand_envelope

    instance = payload["instance"]
    params = payload["params"]
    topology = ser.topology_from_dict(instance["topology"])
    paths = _resolve_paths(topology, instance, params)
    mode = params.get("demand_mode", "fixed")

    def demands_for(*keys):
        for key in keys:
            if instance.get(key) is not None:
                return ser.demands_from_dict(instance[key])
        raise ModelingError(
            f"demand mode {mode!r} needs one of {keys} in the instance"
        )

    kwargs = dict(
        objective=params.get("objective", "total_flow"),
        probability_threshold=params.get("threshold"),
        max_failures=params.get("max_failures"),
        connected_enforced=bool(params.get("connected_enforced", False)),
        time_limit=params.get("time_limit", 1000.0),
        mip_rel_gap=params.get("mip_rel_gap"),
    )
    if mode == "avg":
        config = RahaConfig(
            fixed_demands=dict(demands_for("avg_demands", "demands")),
            **kwargs)
    elif mode in ("max", "fixed"):
        config = RahaConfig(
            fixed_demands=dict(demands_for("peak_demands", "demands")),
            **kwargs)
    elif mode == "variable":
        demands = demands_for("peak_demands", "demands")
        config = RahaConfig(
            demand_bounds=demand_envelope(
                demands, slack=params.get("slack", 0.0)),
            **kwargs)
    else:
        raise ModelingError(f"unknown demand mode {mode!r}")

    result = RahaAnalyzer(topology, paths, config).analyze()
    return {
        "demand_mode": mode,
        "threshold": params.get("threshold"),
        "max_failures": params.get("max_failures"),
        "connected_enforced": kwargs["connected_enforced"],
        "objective": kwargs["objective"],
        "degradation": result.degradation,
        "normalized_degradation": result.normalized_degradation,
        "healthy_value": result.healthy_value,
        "failed_value": result.failed_value,
        "scenario_probability": result.scenario_probability,
        "num_failed_links": result.scenario.num_failed_links,
        "status": result.status,
        "verified": result.verified,
        "solve_seconds": result.solve_seconds,
        "encode_seconds": result.encode_seconds,
        "stats": result.solver_stats,
    }


def _resolve_paths(topology, instance: dict, params: dict):
    """A job's path set: embedded document, or computed in the worker."""
    from repro.network.demand import all_pairs
    from repro.network import serialization as ser

    if instance.get("paths") is not None:
        return ser.paths_from_dict(instance["paths"])
    path_config = instance.get("path_config")
    if path_config is None:
        raise ModelingError(
            "the instance needs either a 'paths' document or a "
            "'path_config' ({pairs, num_primary, num_backup, weighted})"
        )
    pairs = path_config.get("pairs", "all")
    if pairs == "all":
        pairs = all_pairs(topology)
    else:
        pairs = [tuple(pair) for pair in pairs]
    num_primary = int(path_config.get("num_primary", 2))
    num_backup = int(path_config.get("num_backup", 1))
    if path_config.get("weighted"):
        from repro.paths.weighted import diversity_weighted_paths

        return diversity_weighted_paths(
            topology, pairs, num_primary=num_primary, num_backup=num_backup)
    from repro.paths.pathset import PathSet

    return PathSet.k_shortest(
        topology, pairs, num_primary=num_primary, num_backup=num_backup)


@dataclass
class _Campaign:
    """Mutable bookkeeping shared by the serial and pooled loops."""

    config: RunnerConfig
    cache: ResultCache | None
    journal: Journal | None
    tracker: ProgressTracker
    progress: object  # callable(ProgressEvent) or None
    outcomes: dict[str, JobOutcome] = field(default_factory=dict)

    def settle(self, job: Job, outcome: JobOutcome) -> None:
        self.outcomes[job.key] = outcome
        if self.journal is not None:
            self.journal.append({
                "event": "job",
                "key": job.key,
                "label": job.label,
                "status": outcome.status,
                "result": outcome.result if outcome.ok else None,
                "error": outcome.error,
                "attempts": outcome.attempts,
                "seconds": round(outcome.seconds, 6),
            })
        if outcome.status == "done" and self.cache is not None:
            self.cache.put(job.key, outcome.result)
        event = self.tracker.note(
            outcome.status, job.label,
            solver_seconds=(outcome.result or {}).get("solve_seconds", 0.0),
            stats=(outcome.result or {}).get("stats"),
        )
        if self.progress is not None:
            self.progress(event)


def _wall_timeout_for(job: Job, explicit: float | None,
                      config: RunnerConfig) -> float | None:
    if explicit is not None:
        return explicit
    return config.wall_timeout_for(job.params.get("time_limit"))


def run_sweep(
    spec_or_jobs,
    *,
    num_workers: int | None = None,
    cache: ResultCache | str | os.PathLike | None = None,
    journal: Journal | str | os.PathLike | None = None,
    resume: bool = False,
    wall_timeout: float | None = None,
    progress=None,
    config: RunnerConfig | None = None,
) -> SweepOutcome:
    """Run a campaign to completion and return every job's outcome.

    Args:
        spec_or_jobs: A :class:`SweepSpec` or an iterable of
            :class:`Job`; duplicate job keys are collapsed.
        num_workers: Worker processes (overrides ``config``); ``1``
            executes in-process.
        cache: Result cache (or a directory path for one); successful
            jobs are written through, and hits settle as ``cached``.
        journal: Checkpoint journal (or a path for one); every settled
            job is appended, making the campaign resumable.
        resume: Replay the journal first and skip settled jobs
            (``done``/``cached`` records; failures re-run).
        wall_timeout: Per-job wall budget override in seconds; default
            derives from each job's ``time_limit`` via ``config``.
        progress: Callback receiving a
            :class:`~repro.runner.progress.ProgressEvent` per settled job.
        config: Runner knobs (:class:`~repro.core.config.RunnerConfig`).

    Returns:
        A :class:`SweepOutcome`; inspect ``.errors()`` or call
        ``.raise_on_error()`` depending on whether partial results are
        acceptable.
    """
    config = config or RunnerConfig()
    workers = num_workers if num_workers is not None \
        else config.resolved_workers()
    if workers < 1:
        raise ModelingError(f"num_workers must be >= 1, got {workers}")
    if isinstance(cache, (str, os.PathLike)):
        cache = ResultCache(cache)
    if isinstance(journal, (str, os.PathLike)):
        journal = Journal(journal)

    if isinstance(spec_or_jobs, SweepSpec):
        jobs = spec_or_jobs.expand()
    else:
        jobs, seen = [], set()
        for job in spec_or_jobs:
            if job.key not in seen:
                seen.add(job.key)
                jobs.append(job)

    started = time.monotonic()
    campaign = _Campaign(
        config=config, cache=cache, journal=journal,
        tracker=ProgressTracker(total=len(jobs)), progress=progress,
    )
    if journal is not None:
        settled_records = journal.settled() if resume else {}
        journal.append({
            "event": "campaign", "total": len(jobs), "workers": workers,
            "resume": resume,
        })
    else:
        settled_records = {}

    pending: list[Job] = []
    for job in jobs:
        record = settled_records.get(job.key)
        if record is not None:
            campaign.settle(job, JobOutcome(
                job=job, status="resumed", result=record.get("result"),
            ))
            continue
        cached = cache.get(job.key) if cache is not None else None
        if cached is not None:
            campaign.settle(job, JobOutcome(
                job=job, status="cached", result=cached,
            ))
            continue
        pending.append(job)

    if pending:
        if workers == 1:
            _run_serial(pending, campaign, wall_timeout)
        else:
            _run_pool(pending, campaign, wall_timeout, workers)

    return SweepOutcome(
        outcomes=[campaign.outcomes[job.key] for job in jobs],
        wall_seconds=time.monotonic() - started,
    )


def _outcome_from(job: Job, res: dict, attempts: int) -> JobOutcome:
    if res["ok"]:
        return JobOutcome(job=job, status="done", result=res["result"],
                          attempts=attempts, seconds=res["seconds"])
    return JobOutcome(job=job, status=res.get("status", "error"),
                      error=res.get("error"), attempts=attempts,
                      seconds=res.get("seconds", 0.0))


def _run_serial(pending: list[Job], campaign: _Campaign,
                wall_timeout: float | None) -> None:
    """In-process execution with the same retry/timeout semantics."""
    config = campaign.config
    for job in pending:
        attempts = 0
        while True:
            attempts += 1
            res = invoke_job(job.payload,
                             _wall_timeout_for(job, wall_timeout, config))
            if res["ok"] or attempts > config.retries:
                campaign.settle(job, _outcome_from(job, res, attempts))
                break
            time.sleep(config.backoff_seconds * attempts)


def _run_pool(pending: list[Job], campaign: _Campaign,
              wall_timeout: float | None, workers: int) -> None:
    """Pooled execution in rounds; survives hard worker crashes.

    A worker crash (segfault, OOM kill, ``os._exit``) breaks the whole
    :class:`ProcessPoolExecutor`, failing every in-flight future -- so
    the crasher cannot be identified from the wreckage, and innocent
    co-scheduled jobs must not be charged for it.  The recovery
    protocol therefore has two phases:

    1. *Parallel rounds*: all queued jobs share one pool.  Genuine
       failures (a task raised or timed out inside its worker) consume
       a retry; broken-pool casualties are requeued **without** losing
       an attempt.
    2. *Isolation rounds* (entered after a break): each suspect runs in
       its own single-worker pool, so a crash is attributable to
       exactly one job, which then pays the attempt.  Poisonous jobs
       settle as structured errors after their retry budget; everyone
       else completes normally.
    """
    config = campaign.config
    attempts = {job.key: 0 for job in pending}
    queue = list(pending)
    isolate = False
    while queue:
        if isolate:
            queue = _isolation_round(queue, attempts, campaign, wall_timeout)
        else:
            queue, broke = _parallel_round(
                queue, attempts, campaign, wall_timeout, workers)
            isolate = broke
        if queue:
            time.sleep(config.backoff_seconds)


def _parallel_round(queue, attempts, campaign, wall_timeout, workers):
    """One shared-pool pass.  Returns (requeue, pool_broke)."""
    config = campaign.config
    requeue: list[Job] = []
    broke = False
    with ProcessPoolExecutor(max_workers=min(workers, len(queue))) as pool:
        futures = {
            pool.submit(invoke_job, job.payload,
                        _wall_timeout_for(job, wall_timeout, config)): job
            for job in queue
        }
        for future in as_completed(futures):
            job = futures[future]
            try:
                res = future.result()
            except BrokenProcessPool:
                # Collateral or culprit -- unknowable here.  Requeue for
                # an isolation round, free of charge.
                broke = True
                requeue.append(job)
                continue
            except Exception as exc:  # pickling errors etc.
                res = {"ok": False, "status": "error",
                       "error": f"{type(exc).__name__}: {exc}",
                       "seconds": 0.0}
            attempts[job.key] += 1
            if res["ok"] or attempts[job.key] > config.retries:
                campaign.settle(job, _outcome_from(job, res,
                                                   attempts[job.key]))
            else:
                requeue.append(job)
    return requeue, broke


def _isolation_round(queue, attempts, campaign, wall_timeout):
    """One-job-per-pool pass: crashes are attributable, so they pay."""
    config = campaign.config
    requeue: list[Job] = []
    for job in queue:
        with ProcessPoolExecutor(max_workers=1) as pool:
            future = pool.submit(
                invoke_job, job.payload,
                _wall_timeout_for(job, wall_timeout, config))
            try:
                res = future.result()
            except BrokenProcessPool:
                res = {"ok": False, "status": "error",
                       "error": "worker process crashed (hard exit while "
                                "running this job)",
                       "seconds": 0.0}
            except Exception as exc:
                res = {"ok": False, "status": "error",
                       "error": f"{type(exc).__name__}: {exc}",
                       "seconds": 0.0}
        attempts[job.key] += 1
        if res["ok"] or attempts[job.key] > config.retries:
            campaign.settle(job, _outcome_from(job, res, attempts[job.key]))
        else:
            requeue.append(job)
    return requeue
