"""Declarative sweep specifications and hashable job descriptors.

A campaign is a :class:`SweepSpec`: one *instance* (topology, demands,
paths -- embedded as their serialized JSON documents so the spec is
self-contained and content-addressable), a *base* parameter dict, and
either a rectangular *grid* (parameter name -> list of values, expanded
as a cross product) or an explicit list of *cells* for non-rectangular
sweeps like Figure 5's pairing of finite failure budgets with no
threshold and thresholds with no budget.

``SweepSpec.expand()`` turns the spec into :class:`Job` descriptors.  A
job is nothing but its *payload* -- a pure-JSON dict ``{"task", "instance",
"params"}`` -- which makes it picklable for worker processes, hashable
for the result cache (:func:`repro.runner.cache.job_key`), and journal
friendly.  Identical cells produced by overlapping grids deduplicate by
key at expansion time.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from pathlib import Path

from repro.exceptions import ModelingError
from repro.runner.cache import job_key

#: The default worker entry point, as an importable ``module:function``
#: reference (resolved inside worker processes, so specs stay JSON).
DEFAULT_TASK = "repro.runner.executor:degradation_task"

#: Instance keys that may reference on-disk documents in a spec file.
_FILE_KEYS = ("topology", "demands", "avg_demands", "peak_demands", "paths")


@dataclass
class Job:
    """One unit of sweep work: a self-contained, JSON-pure payload."""

    payload: dict
    _key: str | None = field(default=None, repr=False, compare=False)

    @property
    def key(self) -> str:
        """Stable content address of this job (cache/journal key)."""
        if self._key is None:
            self._key = job_key(self.payload)
        return self._key

    @property
    def params(self) -> dict:
        """The job's parameter cell (base merged with its grid cell)."""
        return self.payload.get("params", {})

    @property
    def label(self) -> str:
        """Short human-readable tag for progress lines and errors."""
        params = self.params
        bits = []
        if "demand_mode" in params:
            bits.append(str(params["demand_mode"]))
        if "threshold" in params:
            t = params["threshold"]
            bits.append("t=-" if t is None else f"t={t:g}")
        if "max_failures" in params:
            k = params["max_failures"]
            bits.append("k=inf" if k is None else f"k={k}")
        if params.get("connected_enforced"):
            bits.append("ce")
        return " ".join(bits) if bits else self.key[:12]


@dataclass
class SweepSpec:
    """A declarative campaign: instance x parameter grid -> jobs.

    Attributes:
        instance: Serialized inputs shared by every job.  Must contain a
            ``"topology"`` document; may contain ``"demands"`` /
            ``"avg_demands"`` / ``"peak_demands"`` and ``"paths"`` (or a
            ``"path_config"`` for paths computed inside the worker).
        base: Parameters applied to every cell.
        grid: Parameter name -> list of values; expanded as the cross
            product, in the listed key/value order (deterministic).
        cells: Explicit parameter cells.  When set, ``grid`` must be
            empty; use this for non-rectangular sweeps.
        task: ``module:function`` worker reference.
        name: Campaign name (journals, progress lines, workdirs).
    """

    instance: dict
    base: dict = field(default_factory=dict)
    grid: dict = field(default_factory=dict)
    cells: list | None = None
    task: str = DEFAULT_TASK
    name: str = "sweep"

    def __post_init__(self):
        if not isinstance(self.instance, dict) or "topology" not in self.instance:
            raise ModelingError(
                "a sweep spec's instance must be a dict with a 'topology' "
                "document (file references are resolved by from_dict)"
            )
        if self.cells is not None and self.grid:
            raise ModelingError("set at most one of grid / cells")
        if ":" not in self.task:
            raise ModelingError(
                f"task must be an importable 'module:function' reference, "
                f"got {self.task!r}"
            )

    def parameter_cells(self) -> list[dict]:
        """The sweep's cells: explicit, or the grid's cross product."""
        if self.cells is not None:
            return [dict(cell) for cell in self.cells]
        if not self.grid:
            return [{}]
        names = list(self.grid)
        combos = itertools.product(*(self.grid[name] for name in names))
        return [dict(zip(names, values)) for values in combos]

    def expand(self) -> list[Job]:
        """Expand to jobs, deduplicating identical cells by content key."""
        jobs, seen = [], set()
        for cell in self.parameter_cells():
            params = {**self.base, **cell}
            job = Job({"task": self.task, "instance": self.instance,
                       "params": params})
            if job.key in seen:
                continue
            seen.add(job.key)
            jobs.append(job)
        return jobs

    @property
    def spec_hash(self) -> str:
        """Content address of the whole campaign (journal header)."""
        return job_key({
            "instance": self.instance, "base": self.base, "grid": self.grid,
            "cells": self.cells, "task": self.task,
        })

    def to_dict(self) -> dict:
        """Serialize (instance documents stay embedded)."""
        out = {
            "kind": "sweep_spec",
            "name": self.name,
            "task": self.task,
            "instance": self.instance,
            "base": self.base,
        }
        if self.cells is not None:
            out["cells"] = self.cells
        else:
            out["grid"] = self.grid
        return out

    @classmethod
    def from_dict(cls, data: dict, base_dir: str | None = None) -> "SweepSpec":
        """Build a spec from a (possibly file-referencing) document.

        Instance values that are strings are treated as paths to JSON
        documents (or ``.graphml``/``.xml`` topologies), resolved
        relative to ``base_dir``, and *embedded* -- so the cache key
        covers file contents, not file names: editing a referenced
        topology changes every job key.
        """
        if data.get("kind") not in (None, "sweep_spec"):
            raise ModelingError(
                f"expected a sweep_spec document, got {data.get('kind')!r}"
            )
        instance = dict(data.get("instance", {}))
        for key in _FILE_KEYS:
            ref = instance.get(key)
            if isinstance(ref, str):
                instance[key] = _load_document(ref, key, base_dir)
        return cls(
            instance=instance,
            base=dict(data.get("base", {})),
            grid=dict(data.get("grid", {})),
            cells=list(data["cells"]) if "cells" in data else None,
            task=data.get("task", DEFAULT_TASK),
            name=data.get("name", "sweep"),
        )

    @classmethod
    def from_file(cls, path: str) -> "SweepSpec":
        """Load a spec file; sibling file references resolve beside it."""
        from repro.network import serialization as ser

        spec = cls.from_dict(ser.load_json(path),
                             base_dir=str(Path(path).parent))
        if spec.name == "sweep":
            spec.name = Path(path).stem
        return spec


def _load_document(ref: str, key: str, base_dir: str | None) -> dict:
    """Resolve one instance file reference to its embedded document."""
    from repro.network import serialization as ser

    path = Path(ref)
    if not path.is_absolute() and base_dir is not None:
        path = Path(base_dir) / path
    if key == "topology" and ref.endswith((".graphml", ".xml")):
        from repro.network.graphml import read_graphml

        return ser.topology_to_dict(read_graphml(str(path)))
    return ser.load_json(str(path))
