"""Concrete failure scenarios and failed-network simulation.

A scenario names the set of failed physical links.  Applying it to a
topology and path set reproduces the network behavior Section 5 encodes
into the MILP:

* a LAG's residual capacity is the sum of its surviving links (partial
  failures);
* a LAG is *down* only when all its links are down (Eq. 3);
* a path is down when any of its LAGs is down (Eq. 4);
* the r-th backup path is usable only once at least ``r`` higher-priority
  paths are down (Eq. 5).

:func:`simulate_failed_network` runs the plain TE LP under these rules --
the ground truth that both the baselines and the bi-level verification
compare against.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.exceptions import TopologyError
from repro.network.demand import Pair
from repro.network.topology import LagKey, Topology, lag_key
from repro.paths.ksp import Path
from repro.paths.pathset import DemandPaths, PathSet
from repro.te.base import TESolution
from repro.te.total_flow import TotalFlowTE

#: One failed physical link: (canonical LAG key, link index inside it).
FailedLink = tuple[LagKey, int]


class FailureScenario:
    """An immutable set of failed physical links.

    Build from explicit links, or whole LAGs via :meth:`from_lags`.
    """

    __slots__ = ("_failed",)

    def __init__(self, failed_links: Iterable[FailedLink] = ()):
        normalized = {(lag_key(*key), int(idx)) for key, idx in failed_links}
        self._failed: frozenset[FailedLink] = frozenset(normalized)

    @classmethod
    def from_lags(cls, topology: Topology, lag_keys: Iterable[LagKey]
                  ) -> FailureScenario:
        """A scenario that fails every link of the named LAGs."""
        failed = []
        for key in lag_keys:
            lag = topology.lag_between(*key)
            if lag is None:
                raise TopologyError(f"no LAG {key} to fail")
            failed += [(lag.key, i) for i in range(lag.num_links)]
        return cls(failed)

    @property
    def failed_links(self) -> frozenset[FailedLink]:
        return self._failed

    @property
    def num_failed_links(self) -> int:
        """Total failed links -- the paper's "number of failures"."""
        return len(self._failed)

    def is_failed(self, key: LagKey, link_index: int) -> bool:
        return (lag_key(*key), link_index) in self._failed

    def validate_for(self, topology: Topology) -> None:
        """Check every failed link exists."""
        for key, idx in self._failed:
            lag = topology.lag_between(*key)
            if lag is None:
                raise TopologyError(f"scenario fails unknown LAG {key}")
            if not (0 <= idx < lag.num_links):
                raise TopologyError(
                    f"scenario fails link {idx} of {key} which has only "
                    f"{lag.num_links} links"
                )

    def residual_capacities(self, topology: Topology) -> dict[LagKey, float]:
        """Per-LAG capacity after removing failed links (``c_e``)."""
        self.validate_for(topology)
        caps = {}
        for lag in topology.lags:
            caps[lag.key] = sum(
                link.capacity
                for i, link in enumerate(lag.links)
                if (lag.key, i) not in self._failed
            )
        return caps

    def down_lags(self, topology: Topology) -> set[LagKey]:
        """LAGs with *all* links failed (Eq. 3 semantics)."""
        self.validate_for(topology)
        down = set()
        for lag in topology.lags:
            if all((lag.key, i) in self._failed for i in range(lag.num_links)):
                down.add(lag.key)
        return down

    def union(self, other: FailureScenario) -> FailureScenario:
        return FailureScenario(self._failed | other._failed)

    def applied_to(self, topology: Topology) -> Topology:
        """A copy of the topology with the failed links *removed*.

        This is the paper's online loop ("[Raha] runs immediately after
        each failure occurs"): once a failure has actually happened, the
        operator re-analyzes the degraded WAN.  Surviving links keep
        their capacities and probabilities; a LAG whose links all failed
        is kept as a zero-capacity, non-failable stub so configured paths
        remain structurally valid (they simply cannot carry traffic).
        """
        from repro.network.topology import Link

        self.validate_for(topology)
        out = topology.copy(name=f"{topology.name}-degraded")
        for lag in out.lags:
            survivors = [
                link for i, link in enumerate(lag.links)
                if (lag.key, i) not in self._failed
            ]
            if not survivors:
                survivors = [Link(capacity=0.0, can_fail=False)]
            lag.links = survivors
        return out

    def __eq__(self, other):
        return isinstance(other, FailureScenario) and self._failed == other._failed

    def __hash__(self):
        return hash(self._failed)

    def __repr__(self):
        items = sorted(self._failed)
        shown = ", ".join(f"{k[0]}-{k[1]}#{i}" for k, i in items[:6])
        more = f", +{len(items) - 6} more" if len(items) > 6 else ""
        return f"FailureScenario({shown}{more})"


def path_is_down(topology: Topology, path: Path, down: set[LagKey]) -> bool:
    """Whether a path crosses any fully-down LAG (Eq. 4)."""
    return any(lag.key in down for lag in topology.lags_on_path(path))


def active_paths(
    topology: Topology, demand_paths: DemandPaths, down: set[LagKey]
) -> list[Path]:
    """The paths the fail-over policy allows traffic on (Eq. 5).

    Primary paths are always *allowed* (their flow is naturally limited by
    residual capacity); the r-th backup is allowed once at least ``r``
    higher-priority paths are down.
    """
    flags = [path_is_down(topology, p, down) for p in demand_paths.paths]
    allowed = []
    for j, path in enumerate(demand_paths.paths):
        if j < demand_paths.num_primary:
            allowed.append(path)
            continue
        needed = j - demand_paths.num_primary + 1
        if sum(flags[:j]) >= needed:
            allowed.append(path)
    return allowed


def connected_enforced_holds(
    topology: Topology, paths: PathSet, scenario: FailureScenario
) -> bool:
    """Section 5.1's CE check: every demand keeps at least one up path."""
    down = scenario.down_lags(topology)
    for dp in paths.values():
        if all(path_is_down(topology, p, down) for p in dp.paths):
            return False
    return True


def simulate_failed_network(
    topology: Topology,
    demands: Mapping[Pair, float],
    paths: PathSet,
    scenario: FailureScenario,
    te_factory=None,
) -> TESolution:
    """Route demands on the network under a concrete failure scenario.

    Args:
        topology: The healthy WAN.
        demands: Offered traffic.
        paths: Configured primary/backup paths.
        scenario: The failures to apply.
        te_factory: Zero-argument callable returning a TE solver that
            accepts ``capacities`` and ``path_caps``; defaults to
            :class:`repro.te.total_flow.TotalFlowTE` over all paths.

    Returns:
        The TE solution of the failed network.
    """
    capacities = scenario.residual_capacities(topology)
    down = scenario.down_lags(topology)

    path_caps: dict[tuple[Pair, Path], float] = {}
    for pair, dp in paths.items():
        allowed = set(active_paths(topology, dp, down))
        for path in dp.paths:
            if path not in allowed:
                path_caps[(pair, path)] = 0.0

    solver = te_factory() if te_factory is not None else TotalFlowTE(
        primary_only=False
    )
    return solver.solve(
        topology, demands, paths, capacities=capacities, path_caps=path_caps
    )
