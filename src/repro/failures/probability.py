"""Failure probabilities: scenario arithmetic and estimation.

Section 5.1: a failure *scenario* assigns a state to every link, so its
probability is the full product
``prod(pi_le for failed) * prod(1 - pi_le for up)``, and the probable-
scenario constraint ``probability >= T`` linearizes by taking logs.

This module provides that arithmetic on concrete scenarios, the greedy
solution of Figure 2's question ("how many links can simultaneously fail
with probability above T?"), and the renewal-reward estimator of
Appendix B.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.exceptions import TopologyError
from repro.failures.scenario import FailureScenario
from repro.network.topology import Topology


def _link_probabilities(topology: Topology) -> dict[tuple, float]:
    """Per-(lag key, link idx) probabilities; raises when any is missing."""
    probs = {}
    for lag in topology.lags:
        for i, link in enumerate(lag.links):
            if link.failure_probability is None:
                raise TopologyError(
                    f"link {i} of LAG {lag.key} has no failure probability; "
                    "assign probabilities (e.g. assign_zoo_probabilities) or "
                    "use <= k failure analysis instead"
                )
            probs[(lag.key, i)] = link.failure_probability
    return probs


def scenario_log_probability(
    topology: Topology, scenario: FailureScenario
) -> float:
    """Natural log of the scenario's probability (full assignment).

    SRLGs with a group probability are priced as *one* event: when every
    member is failed the group contributes ``log(p_g)`` once, when none
    is failed ``log(1 - p_g)`` once.  (A scenario failing only part of a
    priced SRLG contradicts the fate-sharing model; its members are then
    priced individually as a conservative fallback.)
    """
    from repro.network.topology import lag_key

    scenario.validate_for(topology)
    grouped: dict[tuple, object] = {}
    for srlg in topology.srlgs:
        if srlg.failure_probability is None:
            continue
        for member in srlg.members:
            grouped[(lag_key(*member[0]), member[1])] = srlg

    total = 0.0
    priced_srlgs: set[int] = set()
    for lag in topology.lags:
        for i, link in enumerate(lag.links):
            key = (lag.key, i)
            srlg = grouped.get(key)
            if srlg is not None:
                members = {(lag_key(*m[0]), m[1]) for m in srlg.members}
                states = {m in scenario.failed_links for m in members}
                if len(states) == 1:  # consistent fate-sharing
                    if id(srlg) in priced_srlgs:
                        continue
                    priced_srlgs.add(id(srlg))
                    p_g = srlg.failure_probability
                    total += (math.log(p_g) if states == {True}
                              else math.log1p(-p_g))
                    continue
                # Mixed state: fall through to individual pricing.
            pi = link.failure_probability
            if pi is None:
                raise TopologyError(
                    f"link {i} of LAG {lag.key} has no failure probability; "
                    "assign probabilities (e.g. assign_zoo_probabilities) "
                    "or use <= k failure analysis instead"
                )
            if key in scenario.failed_links:
                total += math.log(pi)
            else:
                total += math.log1p(-pi)
    return total


def scenario_probability(topology: Topology, scenario: FailureScenario) -> float:
    """The scenario's probability (may underflow to 0 for huge networks)."""
    return math.exp(scenario_log_probability(topology, scenario))


def most_likely_scenario(topology: Topology) -> FailureScenario:
    """The single most probable scenario: fail exactly the links with
    ``pi > 0.5`` (each link takes its more likely state)."""
    probs = _link_probabilities(topology)
    return FailureScenario(key for key, pi in probs.items() if pi > 0.5)


def max_simultaneous_failures(
    topology: Topology, threshold: float
) -> tuple[int, FailureScenario]:
    """Figure 2: the most links that can fail together with prob >= T.

    Maximizing the failure count under the log-probability budget is a
    knapsack with uniform item value, so a greedy by per-link log-odds
    cost is exact: start from the most likely scenario (every ``pi > 0.5``
    link already failed -- failing those *gains* probability), then flip
    further links cheapest-first while the budget holds.

    Args:
        topology: WAN with full link probabilities.
        threshold: Scenario probability floor ``T`` in (0, 1).

    Returns:
        ``(count, scenario)`` -- the maximum simultaneous failure count
        and a scenario achieving it.  Count is 0 (empty scenario) when
        even single failures fall below the threshold.
    """
    if not (0.0 < threshold < 1.0):
        raise ValueError(f"threshold must be in (0, 1), got {threshold}")
    probs = _link_probabilities(topology)
    log_t = math.log(threshold)

    # Log prob of the most likely scenario and the flip costs from it.
    base = sum(math.log(max(pi, 1.0 - pi)) for pi in probs.values())
    failed = {key for key, pi in probs.items() if pi > 0.5}
    if base < log_t:
        # Even the most likely scenario is below T; also check all-up.
        all_up = sum(math.log1p(-pi) for pi in probs.values())
        if all_up < log_t:
            return 0, FailureScenario()
        # Fall back to flipping from the all-up scenario.
        base, failed = all_up, set()

    flip_costs = sorted(
        (math.log1p(-pi) - math.log(pi), key)
        for key, pi in probs.items()
        if key not in failed
    )
    remaining = base - log_t
    for cost, key in flip_costs:
        if cost > remaining + 1e-12:
            break
        remaining -= cost
        failed.add(key)
    return len(failed), FailureScenario(failed)


@dataclass
class RenewalRewardEstimator:
    """Estimate a link's steady-state down probability from event logs.

    Appendix B: model repairs as a renewal process.  ``X_i`` is the time
    between consecutive repairs and ``R_i`` the downtime inside that
    interval; the renewal reward theorem gives
    ``P(down) = E[R] / E[X] = lim R(t)/t``.

    Feed ``(down_at, up_at)`` outage intervals in chronological order;
    the estimate uses complete repair-to-repair cycles.
    """

    _down_times: list[float] = field(default_factory=list)
    _up_times: list[float] = field(default_factory=list)

    def add_outage(self, down_at: float, up_at: float) -> None:
        """Record one outage: the link went down and was later repaired."""
        if up_at <= down_at:
            raise ValueError(f"repair at {up_at} not after failure at {down_at}")
        if self._up_times and down_at < self._up_times[-1]:
            raise ValueError("outages must be added in chronological order")
        self._down_times.append(down_at)
        self._up_times.append(up_at)

    @property
    def num_cycles(self) -> int:
        """Complete repair-to-repair renewal cycles observed."""
        return max(0, len(self._up_times) - 1)

    def probability(self) -> float:
        """``E[R]/E[X]`` over complete cycles.

        Raises:
            ValueError: With fewer than two outages (no complete cycle).
        """
        if self.num_cycles < 1:
            raise ValueError("need at least two outages for a renewal cycle")
        # Cycle i runs from repair i to repair i+1 and contains downtime
        # R_i = (up_{i+1} - down_{i+1}).
        total_x = self._up_times[-1] - self._up_times[0]
        total_r = sum(
            self._up_times[i + 1] - self._down_times[i + 1]
            for i in range(self.num_cycles)
        )
        return total_r / total_x

    @classmethod
    def from_trace(cls, outages: list[tuple[float, float]]) -> RenewalRewardEstimator:
        """Build an estimator from a list of ``(down_at, up_at)`` pairs."""
        est = cls()
        for down_at, up_at in outages:
            est.add_outage(down_at, up_at)
        return est
