"""Exhaustive up-to-k failure analysis -- the baseline Raha outperforms.

Tools like FFC [27] and Yu [26] "only consider up to k-failures, where k
is typically <= 2".  This module implements that analysis by enumeration:
every combination of at most ``k`` failed links is simulated and the one
causing the worst degradation (or worst absolute performance) is
reported.  It is exact for what it covers but explodes combinatorially --
precisely the gap Figure 5 quantifies.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterator, Mapping
from dataclasses import dataclass

from repro.failures.probability import scenario_log_probability
from repro.failures.scenario import (
    FailureScenario,
    connected_enforced_holds,
    simulate_failed_network,
)
from repro.network.demand import Pair
from repro.network.topology import Topology
from repro.paths.pathset import PathSet
from repro.te.total_flow import TotalFlowTE


def enumerate_scenarios(
    topology: Topology,
    max_failures: int,
    probability_threshold: float | None = None,
    relevant_only: bool = True,
    paths: PathSet | None = None,
) -> Iterator[FailureScenario]:
    """Yield all scenarios with 1..max_failures failed links.

    Args:
        topology: The WAN.
        max_failures: The ``k`` bound on simultaneously failed links.
        probability_threshold: Drop scenarios less likely than this
            (requires link probabilities).  Must lie strictly between
            0 and 1; ``None`` disables the filter.
        relevant_only: When ``paths`` is given, restrict to links on LAGs
            that appear in some configured path -- failures elsewhere
            cannot affect any flow, so skipping them is lossless.
        paths: Path set used for the relevance pruning.
    """
    if max_failures < 1:
        raise ValueError(f"max_failures must be positive, got {max_failures}")
    if probability_threshold is not None and not (
        0.0 < probability_threshold < 1.0
    ):
        raise ValueError(
            f"probability_threshold must be in (0, 1), got "
            f"{probability_threshold} (pass None to disable the filter)"
        )
    links = [
        (lag.key, i) for lag in topology.lags for i in range(lag.num_links)
    ]
    if relevant_only and paths is not None:
        used = set()
        for dp in paths.values():
            for path in dp.paths:
                for lag in topology.lags_on_path(path):
                    used.add(lag.key)
        links = [(key, i) for key, i in links if key in used]

    log_t = (
        math.log(probability_threshold)
        if probability_threshold is not None else None
    )
    for count in range(1, max_failures + 1):
        for combo in itertools.combinations(links, count):
            scenario = FailureScenario(combo)
            if log_t is not None:
                if scenario_log_probability(topology, scenario) < log_t:
                    continue
            yield scenario


@dataclass
class KFailureResult:
    """Worst case found by enumeration.

    Attributes:
        degradation: Healthy total flow minus failed total flow, for the
            scenario maximizing that gap.
        scenario: The worst scenario (``None`` if nothing qualified).
        healthy_flow: The design point's routed traffic.
        failed_flow: The failed network's routed traffic.
        scenarios_checked: How many scenarios were simulated.
    """

    degradation: float
    scenario: FailureScenario | None
    healthy_flow: float
    failed_flow: float
    scenarios_checked: int


def worst_case_k_failures(
    topology: Topology,
    demands: Mapping[Pair, float],
    paths: PathSet,
    max_failures: int,
    probability_threshold: float | None = None,
    connected_enforced: bool = False,
    minimize_performance: bool = False,
) -> KFailureResult:
    """Find the worst ``<= k`` failure scenario by exhaustive simulation.

    Args:
        topology: The WAN.
        demands: A *fixed* demand matrix (enumeration baselines cannot
            search over demands -- that is Table 1's point).
        paths: Configured paths.
        max_failures: ``k``.
        probability_threshold: Optional scenario probability floor.
        connected_enforced: Skip scenarios that disconnect some demand.
        minimize_performance: Rank scenarios by *lowest failed
            performance* instead of largest degradation -- the naive
            objective of QARC/[9] that Figure 3 contrasts with Raha.

    Returns:
        The worst scenario and its degradation.
    """
    healthy = TotalFlowTE(primary_only=True).solve(topology, demands, paths)
    best_gap = 0.0
    best_perf = float("inf")
    best_scenario = None
    best_failed = healthy.total_flow
    checked = 0
    for scenario in enumerate_scenarios(
        topology, max_failures, probability_threshold,
        relevant_only=True, paths=paths,
    ):
        if connected_enforced and not connected_enforced_holds(
            topology, paths, scenario
        ):
            continue
        checked += 1
        failed = simulate_failed_network(topology, demands, paths, scenario)
        # An infeasible failed network delivers nothing -- maximal
        # degradation, the same semantics ScenarioResolver.delivered
        # uses.  Skipping it here would hide the true worst case while
        # still counting the scenario as "checked".
        failed_flow = float(failed.total_flow) if failed.feasible else 0.0
        gap = healthy.total_flow - failed_flow
        if minimize_performance:
            better = failed_flow < best_perf - 1e-9
        else:
            better = gap > best_gap + 1e-9
        if better:
            best_gap = gap
            best_perf = failed_flow
            best_scenario = scenario
            best_failed = failed_flow
    return KFailureResult(
        degradation=best_gap,
        scenario=best_scenario,
        healthy_flow=healthy.total_flow,
        failed_flow=best_failed,
        scenarios_checked=checked,
    )
