"""Synthetic link up/down event traces.

Production telemetry ("we know when a link goes down and when it is
repaired" [35]) is proprietary; this generator produces the same data
shape from an alternating renewal process with exponential up and down
times, whose ground-truth steady-state down probability is
``mttr / (mtbf + mttr)``.  Tests use it to validate the renewal-reward
estimator end to end.
"""

from __future__ import annotations

import numpy as np


def generate_outage_trace(
    mtbf: float,
    mttr: float,
    horizon: float,
    seed: int = 0,
) -> list[tuple[float, float]]:
    """Simulate outages of one link over ``[0, horizon]``.

    Args:
        mtbf: Mean time between failures (mean up duration).
        mttr: Mean time to repair (mean down duration).
        horizon: Observation window length.
        seed: RNG seed.

    Returns:
        Chronological ``(down_at, up_at)`` pairs fully inside the window.
    """
    if mtbf <= 0 or mttr <= 0 or horizon <= 0:
        raise ValueError("mtbf, mttr, and horizon must be positive")
    rng = np.random.default_rng(seed)
    outages = []
    clock = 0.0
    while True:
        clock += float(rng.exponential(mtbf))
        down_at = clock
        clock += float(rng.exponential(mttr))
        up_at = clock
        if up_at > horizon:
            break
        outages.append((down_at, up_at))
    return outages


def true_down_probability(mtbf: float, mttr: float) -> float:
    """Ground-truth steady-state down probability of the process."""
    return mttr / (mtbf + mttr)
