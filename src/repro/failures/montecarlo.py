"""Monte Carlo availability estimation.

Raha answers the *worst case* question; operators also track the
*expected* picture ("we aim to provide > 4-9's availability", Section 2.2).
This module samples failure scenarios from the per-link probabilities
(respecting SRLG fate-sharing), simulates each with the same TE code path
the rest of the repository uses, and estimates:

* the expected degradation,
* the probability that degradation exceeds an operator threshold,
* traffic availability (delivered / offered over the scenario mix).

The worst sampled scenario is also reported -- a useful sanity check
against the analyzer's exact worst case (sampling should never beat it).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import TopologyError
from repro.failures.scenario import FailureScenario, simulate_failed_network
from repro.network.demand import Pair
from repro.network.topology import Topology, lag_key
from repro.paths.pathset import PathSet
from repro.te.total_flow import TotalFlowTE


@dataclass
class AvailabilityEstimate:
    """The outcome of a Monte Carlo availability run.

    Attributes:
        expected_degradation: Mean healthy-minus-failed traffic.
        availability: Mean delivered / healthy traffic over samples.
        exceedance_probability: Fraction of samples whose degradation
            exceeded the caller's threshold.
        worst_sampled: Largest sampled degradation.
        worst_scenario: A scenario achieving ``worst_sampled``.
        samples: Number of scenarios simulated.
        healthy_flow: The design point's delivered traffic.
    """

    expected_degradation: float
    availability: float
    exceedance_probability: float
    worst_sampled: float
    worst_scenario: FailureScenario
    samples: int
    healthy_flow: float
    degradations: list[float] = field(default_factory=list, repr=False)

    def quantile(self, q: float) -> float:
        """The q-quantile of the sampled degradation distribution."""
        if not (0.0 <= q <= 1.0):
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        return float(np.quantile(self.degradations, q))


def sample_scenario(topology: Topology, rng: np.random.Generator
                    ) -> FailureScenario:
    """Draw one failure scenario from the link-state distribution.

    SRLGs with a group probability are drawn as one Bernoulli event for
    the whole group; remaining links are independent Bernoullis.
    """
    failed = []
    grouped: dict[tuple, int] = {}
    for gid, srlg in enumerate(topology.srlgs):
        if srlg.failure_probability is None:
            continue
        for member in srlg.members:
            grouped[(lag_key(*member[0]), member[1])] = gid
    group_state: dict[int, bool] = {}
    for gid, srlg in enumerate(topology.srlgs):
        if srlg.failure_probability is not None:
            group_state[gid] = bool(rng.uniform() < srlg.failure_probability)

    for lag in topology.lags:
        for i, link in enumerate(lag.links):
            gid = grouped.get((lag.key, i))
            if gid is not None:
                if group_state[gid]:
                    failed.append((lag.key, i))
                continue
            p = link.failure_probability
            if p is None:
                if not link.can_fail:
                    continue
                raise TopologyError(
                    f"link {i} of LAG {lag.key} has no failure probability"
                )
            if link.can_fail and rng.uniform() < p:
                failed.append((lag.key, i))
    return FailureScenario(failed)


def estimate_availability(
    topology: Topology,
    demands: dict[Pair, float],
    paths: PathSet,
    samples: int = 200,
    degradation_threshold: float = 0.0,
    seed: int = 0,
) -> AvailabilityEstimate:
    """Monte Carlo estimate of expected degradation and availability.

    Args:
        topology: The WAN (all failable links need probabilities).
        demands: Offered traffic.
        paths: Configured primary/backup paths.
        samples: Scenario draws.
        degradation_threshold: The exceedance statistic's threshold
            (same units as demands).
        seed: RNG seed.
    """
    if samples < 1:
        raise ValueError(f"need at least one sample, got {samples}")
    rng = np.random.default_rng(seed)
    healthy = TotalFlowTE(primary_only=True).solve(topology, demands, paths)
    healthy_flow = healthy.total_flow

    degradations: list[float] = []
    worst = -float("inf")
    worst_scenario = FailureScenario()
    cache: dict[FailureScenario, float] = {}
    for _ in range(samples):
        scenario = sample_scenario(topology, rng)
        if scenario in cache:
            degradation = cache[scenario]
        else:
            failed = simulate_failed_network(topology, demands, paths,
                                             scenario)
            delivered = failed.total_flow if failed.feasible else 0.0
            degradation = healthy_flow - delivered
            cache[scenario] = degradation
        degradations.append(degradation)
        if degradation > worst:
            worst = degradation
            worst_scenario = scenario

    array = np.asarray(degradations)
    availability = (
        float(np.mean((healthy_flow - array) / healthy_flow))
        if healthy_flow > 0 else 1.0
    )
    return AvailabilityEstimate(
        expected_degradation=float(array.mean()),
        availability=availability,
        exceedance_probability=float(
            np.mean(array > degradation_threshold)
        ),
        worst_sampled=float(array.max()),
        worst_scenario=worst_scenario,
        samples=samples,
        healthy_flow=healthy_flow,
        degradations=[float(d) for d in degradations],
    )
