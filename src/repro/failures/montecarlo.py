"""Monte Carlo availability estimation.

Raha answers the *worst case* question; operators also track the
*expected* picture ("we aim to provide > 4-9's availability", Section 2.2).
This module samples failure scenarios from the per-link probabilities
(respecting SRLG fate-sharing), simulates each with the same TE code path
the rest of the repository uses, and estimates:

* the expected degradation,
* the probability that degradation exceeds an operator threshold,
* traffic availability (delivered / offered over the scenario mix).

The worst sampled scenario is also reported -- a useful sanity check
against the analyzer's exact worst case (sampling should never beat it).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

import logging

from repro.exceptions import TopologyError
from repro.failures.scenario import FailureScenario, active_paths
from repro.network.demand import Pair
from repro.network.topology import LagKey, Topology, lag_key
from repro.obs.metrics import metrics
from repro.obs.trace import current_tracer
from repro.paths.pathset import PathSet
from repro.resilience.faults import maybe_fire
from repro.solver import LinExpr, Model, Var
from repro.te.base import effective_capacities, validate_te_inputs
from repro.te.total_flow import TotalFlowTE

logger = logging.getLogger(__name__)


@dataclass
class AvailabilityEstimate:
    """The outcome of a Monte Carlo availability run.

    Attributes:
        expected_degradation: Mean healthy-minus-failed traffic.
        availability: Mean delivered / healthy traffic over samples.
        exceedance_probability: Fraction of samples whose degradation
            exceeded the caller's threshold.
        worst_sampled: Largest sampled degradation.
        worst_scenario: A scenario achieving ``worst_sampled``.
        samples: Number of scenarios simulated.
        healthy_flow: The design point's delivered traffic.
        distinct_scenarios: Distinct canonical scenarios among the
            samples (each solved exactly once).
        cache_hits: Scenarios answered from a persistent delivered-flow
            cache (parallel engine only; 0 for the serial estimator).
        fresh_solves: Scenarios that required an LP solve this run.
        chunk_fallbacks: Worker chunks that failed (chaos, crash, ...)
            and were re-evaluated in the parent process.
        rounds: Sampling rounds taken (> 1 only under adaptive
            ``ci_width`` stopping).
        ci_width: Achieved width of the normal-approximation confidence
            interval on availability (``None`` when not computed).
    """

    expected_degradation: float
    availability: float
    exceedance_probability: float
    worst_sampled: float
    worst_scenario: FailureScenario
    samples: int
    healthy_flow: float
    degradations: list[float] = field(default_factory=list, repr=False)
    distinct_scenarios: int = 0
    cache_hits: int = 0
    fresh_solves: int = 0
    chunk_fallbacks: int = 0
    rounds: int = 1
    ci_width: float | None = None

    def quantile(self, q: float) -> float:
        """The q-quantile of the sampled degradation distribution."""
        if not (0.0 <= q <= 1.0):
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        return float(np.quantile(self.degradations, q))


def sample_scenario(topology: Topology, rng: np.random.Generator
                    ) -> FailureScenario:
    """Draw one failure scenario from the link-state distribution.

    SRLGs with a group probability are drawn as one Bernoulli event for
    the whole group; remaining links are independent Bernoullis.
    """
    failed = []
    grouped: dict[tuple, int] = {}
    for gid, srlg in enumerate(topology.srlgs):
        if srlg.failure_probability is None:
            continue
        for member in srlg.members:
            grouped[(lag_key(*member[0]), member[1])] = gid
    group_state: dict[int, bool] = {}
    for gid, srlg in enumerate(topology.srlgs):
        if srlg.failure_probability is not None:
            group_state[gid] = bool(rng.uniform() < srlg.failure_probability)

    for lag in topology.lags:
        for i, link in enumerate(lag.links):
            gid = grouped.get((lag.key, i))
            if gid is not None:
                # A fate-sharing group draw still cannot take down a
                # link marked can_fail=False (planned-immune capacity
                # stays up even when its conduit is cut).
                if group_state[gid] and link.can_fail:
                    failed.append((lag.key, i))
                continue
            p = link.failure_probability
            if p is None:
                if not link.can_fail:
                    continue
                raise TopologyError(
                    f"link {i} of LAG {lag.key} has no failure probability"
                )
            if link.can_fail and rng.uniform() < p:
                failed.append((lag.key, i))
    return FailureScenario(failed)


class ScenarioResolver:
    """Failed-network TE that compiles its LP once and re-solves per scenario.

    :func:`repro.failures.scenario.simulate_failed_network` rebuilds the
    whole TE model for every scenario; over a Monte Carlo run that is
    thousands of identical matrix assemblies.  This class builds the LP
    over *all* configured paths once, then expresses each scenario purely
    as bound patches via :meth:`repro.solver.model.Model.resolve_with`:

    * a LAG's capacity row gets the scenario's residual capacity;
    * a path disallowed by the fail-over policy (Eq. 5) gets its flow
      variable's upper bound pinned to zero.

    The optimum is identical to ``simulate_failed_network`` with the
    default :class:`TotalFlowTE(primary_only=False)` solver: an allowed
    path's baseline bound of the pair's demand volume is already implied
    by the demand row.
    """

    def __init__(
        self,
        topology: Topology,
        demands: dict[Pair, float],
        paths: PathSet,
    ):
        validate_te_inputs(topology, demands, paths)
        self.topology = topology
        self.demands = dict(demands)
        self.paths = paths
        caps = effective_capacities(topology, None)

        model = Model("scenario-resolver")
        self._path_vars: dict[tuple, Var] = {}
        per_lag: dict[LagKey, list[int]] = defaultdict(list)
        dem_cols: list[int] = []
        dem_indptr: list[int] = [0]
        dem_rhs: list[float] = []
        for pair, volume in self.demands.items():
            dp = paths[pair]
            for path in dp.paths:
                var = model.add_var(
                    ub=max(volume, 0.0),
                    name=f"f[{pair}][{'-'.join(path)}]",
                )
                self._path_vars[(pair, path)] = var
                dem_cols.append(var.index)
                for lag in topology.lags_on_path(path):
                    per_lag[lag.key].append(var.index)
            if len(dem_cols) > dem_indptr[-1]:
                dem_indptr.append(len(dem_cols))
                dem_rhs.append(volume)
        if dem_rhs:
            model.add_constrs_batch(
                dem_indptr, dem_cols, rhs=dem_rhs, name="dem"
            )
        self._lag_rows: dict[LagKey, int] = {}
        if per_lag:
            lag_cols: list[int] = []
            lag_indptr: list[int] = [0]
            lag_rhs: list[float] = []
            keys = []
            for key, cols_on_lag in per_lag.items():
                lag_cols.extend(cols_on_lag)
                lag_indptr.append(len(lag_cols))
                lag_rhs.append(caps[key])
                keys.append(key)
            rows = model.add_constrs_batch(
                lag_indptr, lag_cols, rhs=lag_rhs, name="cap"
            )
            self._lag_rows = dict(zip(keys, rows))
        model.set_objective(
            LinExpr.from_arrays(
                np.fromiter(
                    (v.index for v in self._path_vars.values()),
                    dtype=np.intp,
                    count=len(self._path_vars),
                ),
                np.ones(len(self._path_vars)),
            ),
            sense="max",
        )
        self._model = model

    def delivered(self, scenario: FailureScenario) -> float:
        """Total traffic routed under ``scenario``.

        Uses the compiled model's incremental re-solve; if that fails
        (solver error, or a chaos-injected ``resolver.resolve`` fault),
        falls back to a fresh :func:`simulate_failed_network`-style solve
        of the scenario rather than silently reporting 0.0 delivered --
        an all-paths-down answer would skew every availability statistic
        downstream.  (A genuinely infeasible scenario delivers 0.0 from
        the fallback too, which is the correct value, not a guess.)
        """
        capacities = scenario.residual_capacities(self.topology)
        down = scenario.down_lags(self.topology)
        bound_overrides: dict[Var, float] = {}
        for pair in self.demands:
            dp = self.paths[pair]
            allowed = set(active_paths(self.topology, dp, down))
            for path in dp.paths:
                if path not in allowed:
                    bound_overrides[self._path_vars[(pair, path)]] = 0.0
        rhs_overrides = {
            row: capacities[key] for key, row in self._lag_rows.items()
        }
        failure = None
        if maybe_fire("resolver.resolve", key=repr(scenario)):
            failure = "chaos-injected resolver failure"
        else:
            try:
                result = self._model.resolve_with(
                    rhs_overrides=rhs_overrides,
                    bound_overrides=bound_overrides,
                )
            except Exception as exc:
                failure = f"{type(exc).__name__}: {exc}"
            else:
                if result.status.ok and result.x is not None:
                    return float(result.objective)
                if result.status.value == "infeasible":
                    # A real infeasibility (demands cannot be routed at
                    # all) delivers nothing; no fallback needed.
                    return 0.0
                failure = f"re-solve ended with {result.status.value}"
        metrics().counter("resolver.fallbacks").inc()
        logger.warning(
            "scenario resolver failed (%s); falling back to a fresh solve "
            "for this scenario", failure,
        )
        return self._delivered_fresh(scenario)

    def _delivered_fresh(self, scenario: FailureScenario) -> float:
        """The non-incremental answer: rebuild and solve from scratch."""
        from repro.failures.scenario import simulate_failed_network

        outcome = simulate_failed_network(
            self.topology, self.demands, self.paths, scenario
        )
        return float(outcome.total_flow) if outcome.feasible else 0.0


def estimate_availability(
    topology: Topology,
    demands: dict[Pair, float],
    paths: PathSet,
    samples: int = 200,
    degradation_threshold: float = 0.0,
    seed: int = 0,
) -> AvailabilityEstimate:
    """Monte Carlo estimate of expected degradation and availability.

    Args:
        topology: The WAN (all failable links need probabilities).
        demands: Offered traffic.
        paths: Configured primary/backup paths.
        samples: Scenario draws.
        degradation_threshold: The exceedance statistic's threshold
            (same units as demands).
        seed: RNG seed.
    """
    if samples < 1:
        raise ValueError(f"need at least one sample, got {samples}")
    rng = np.random.default_rng(seed)
    with current_tracer().span("montecarlo", samples=samples) as span:
        healthy = TotalFlowTE(primary_only=True).solve(
            topology, demands, paths
        )
        healthy_flow = healthy.total_flow

        resolver = ScenarioResolver(topology, demands, paths)
        degradations: list[float] = []
        worst = -float("inf")
        worst_scenario = FailureScenario()
        cache: dict[FailureScenario, float] = {}
        for _ in range(samples):
            scenario = sample_scenario(topology, rng)
            if scenario in cache:
                degradation = cache[scenario]
            else:
                degradation = healthy_flow - resolver.delivered(scenario)
                cache[scenario] = degradation
            degradations.append(degradation)
            if degradation > worst:
                worst = degradation
                worst_scenario = scenario
        span.set(distinct_scenarios=len(cache))

    array = np.asarray(degradations)
    availability = (
        float(np.mean((healthy_flow - array) / healthy_flow))
        if healthy_flow > 0 else 1.0
    )
    return AvailabilityEstimate(
        expected_degradation=float(array.mean()),
        availability=availability,
        exceedance_probability=float(
            np.mean(array > degradation_threshold)
        ),
        worst_sampled=float(array.max()),
        worst_scenario=worst_scenario,
        samples=samples,
        healthy_flow=healthy_flow,
        degradations=[float(d) for d in degradations],
        distinct_scenarios=len(cache),
        fresh_solves=len(cache),
    )
