"""Failure scenarios, probabilities, enumeration, and trace estimation.

* :mod:`repro.failures.scenario` -- concrete failure scenarios, their
  application to a topology (residual capacities, down paths, fail-over
  activation), and failed-network *simulation*.
* :mod:`repro.failures.probability` -- scenario probabilities, the
  log-linear probability-threshold arithmetic of Section 5.1, Figure 2's
  max-simultaneous-failure computation, and the renewal-reward estimator
  of Appendix B.
* :mod:`repro.failures.enumeration` -- exhaustive up-to-k failure
  analysis, the baseline every evaluation figure compares against.
* :mod:`repro.failures.montecarlo` -- sampled availability estimation,
  the expected-case complement to Raha's worst case.
* :mod:`repro.failures.availability` -- the parallel, vectorized
  Monte Carlo availability engine (same statistics, production scale:
  batched sampling, up-front dedup, chunked worker evaluation, and a
  persistent delivered-flow cache).
* :mod:`repro.failures.tracegen` -- synthetic link up/down event traces
  with known ground-truth probabilities (stand-in for production data).
"""

from repro.failures.availability import (
    ScenarioSampler,
    availability_task,
    estimate_availability_parallel,
)
from repro.failures.enumeration import enumerate_scenarios, worst_case_k_failures
from repro.failures.montecarlo import (
    ScenarioResolver,
    estimate_availability,
    sample_scenario,
)
from repro.failures.probability import (
    RenewalRewardEstimator,
    max_simultaneous_failures,
    scenario_log_probability,
    scenario_probability,
)
from repro.failures.scenario import FailureScenario, simulate_failed_network

__all__ = [
    "FailureScenario",
    "RenewalRewardEstimator",
    "ScenarioResolver",
    "ScenarioSampler",
    "availability_task",
    "enumerate_scenarios",
    "estimate_availability",
    "estimate_availability_parallel",
    "max_simultaneous_failures",
    "scenario_log_probability",
    "sample_scenario",
    "scenario_probability",
    "simulate_failed_network",
    "worst_case_k_failures",
]
