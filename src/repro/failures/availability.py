"""Parallel, vectorized Monte Carlo availability estimation.

:func:`repro.failures.montecarlo.estimate_availability` is a serial
loop: per-link Python RNG draws, an in-loop dedup dict, one process.
This module is the production-scale engine behind the same statistics:

* **Vectorized sampling** -- all ``samples x links`` Bernoulli states
  come from *one* RNG matrix call (SRLG group draws included), then
  rows are canonicalized and deduplicated up front so each distinct
  scenario is solved exactly once.  The sampler consumes the exact
  same RNG stream as the serial ``sample_scenario`` loop (NumPy's
  ``Generator.random(shape)`` fills rows with the doubles successive
  scalar ``uniform()`` calls would return), so serial and vectorized
  runs see bit-identical scenario sequences for a given seed.
* **Parallel evaluation** -- distinct scenarios are partitioned into
  fixed-size chunks dispatched through the sweep runner
  (:func:`repro.runner.executor.run_sweep`): per-chunk wall timeouts,
  bounded retries, and chaos sites all apply.  Each worker compiles
  one :class:`~repro.failures.montecarlo.ScenarioResolver` per chunk
  and streams delivered flows back.  The chunk partition depends only
  on the sample stream and ``chunk_size`` -- never on the worker
  count -- and results merge by scenario identity, so the estimate is
  **bit-identical regardless of ``--jobs``**.
* **Persistent memoization** -- delivered flow is content-addressed by
  ``(topology, demands, paths, scenario)`` through
  :mod:`repro.runner.cache`, so repeated campaigns (threshold sweeps,
  service resubmissions) skip already-solved scenarios entirely.
* **Adaptive stopping** -- an optional ``ci_width`` target keeps
  drawing rounds of samples until the normal-approximation confidence
  interval on availability is narrow enough.

Graceful degradation: a chunk that fails permanently (a chaos-injected
``availability.chunk`` fault, a crashing worker past its retry budget)
is re-evaluated in the parent process, so the estimate always
completes -- with values identical to a fault-free run, because
:meth:`ScenarioResolver.delivered` is deterministic per scenario.
"""

from __future__ import annotations

import logging
import math
import os
from statistics import NormalDist

import numpy as np

from repro.core.config import MonteCarloConfig, RunnerConfig
from repro.exceptions import TopologyError
from repro.failures.montecarlo import AvailabilityEstimate, ScenarioResolver
from repro.failures.scenario import FailureScenario
from repro.network.demand import Pair
from repro.network.topology import Topology, lag_key
from repro.obs.metrics import metrics
from repro.obs.trace import current_tracer
from repro.paths.pathset import PathSet
from repro.resilience.faults import FaultPlan, install_plan, maybe_fire
from repro.runner.cache import ResultCache, job_key
from repro.runner.executor import run_sweep
from repro.runner.jobs import Job
from repro.te.total_flow import TotalFlowTE

logger = logging.getLogger(__name__)

#: The worker entry point for scenario chunks, as an importable
#: ``module:function`` reference (resolved inside worker processes).
CHUNK_TASK = "repro.failures.availability:availability_chunk_task"


def _ser():
    """The serialization module, imported lazily.

    ``repro.network.serialization`` imports ``repro.core.degradation``,
    which imports this package -- a module-level import here would be a
    circular import at package init time.
    """
    from repro.network import serialization
    return serialization


def _instance_from_docs(instance: dict):
    """(topology, demands, paths) rebuilt from serialized documents."""
    ser = _ser()
    topology = ser.topology_from_dict(instance["topology"])
    demands = dict(ser.demands_from_dict(instance["demands"]))
    paths = ser.paths_from_dict(instance["paths"])
    return topology, demands, paths


class ScenarioSampler:
    """Vectorized scenario sampling, stream-compatible with the serial loop.

    The serial :func:`~repro.failures.montecarlo.sample_scenario`
    consumes, per sample, one uniform per SRLG carrying a group
    probability (in ``topology.srlgs`` order) followed by one uniform
    per independent *failable* link (in LAG/link order; links with
    ``can_fail=False`` short-circuit and consume nothing).  This class
    precomputes that column layout once, so ``sample(rng, n)`` is a
    single ``rng.random((n, columns))`` call whose rows reproduce the
    serial draw stream bit for bit.
    """

    def __init__(self, topology: Topology):
        self.topology = topology
        grouped: dict[tuple, int] = {}
        group_ps: list[float] = []
        gid_to_col: dict[int, int] = {}
        for gid, srlg in enumerate(topology.srlgs):
            if srlg.failure_probability is None:
                continue
            gid_to_col[gid] = len(group_ps)
            group_ps.append(float(srlg.failure_probability))
            for member in srlg.members:
                grouped[(lag_key(*member[0]), member[1])] = gid

        #: ``(lag_key, link_index)`` per column of the failure matrix,
        #: in LAG/link order -- the canonical link enumeration.
        self.links: list[tuple] = []
        link_group_col: list[int] = []
        link_can_fail: list[bool] = []
        indep_col: list[int] = []
        indep_ps: list[float] = []
        for lag in topology.lags:
            for i, link in enumerate(lag.links):
                self.links.append((lag.key, i))
                can_fail = bool(link.can_fail)
                link_can_fail.append(can_fail)
                gid = grouped.get((lag.key, i))
                if gid is not None:
                    link_group_col.append(gid_to_col[gid])
                    indep_col.append(-1)
                    continue
                link_group_col.append(-1)
                p = link.failure_probability
                if p is None:
                    if can_fail:
                        raise TopologyError(
                            f"link {i} of LAG {lag.key} has no failure "
                            f"probability"
                        )
                    indep_col.append(-1)
                    continue
                if not can_fail:
                    # The serial loop short-circuits before drawing for
                    # a protected link, so no column here either.
                    indep_col.append(-1)
                    continue
                indep_col.append(len(indep_ps))
                indep_ps.append(float(p))

        self._group_ps = np.asarray(group_ps, dtype=float)
        self._indep_ps = np.asarray(indep_ps, dtype=float)
        self._num_groups = len(group_ps)
        self._num_indep = len(indep_ps)
        self._link_group_col = np.asarray(link_group_col, dtype=np.intp)
        self._link_can_fail = np.asarray(link_can_fail, dtype=bool)
        self._indep_col = np.asarray(indep_col, dtype=np.intp)
        #: Matrix columns a group draw can fail (grouped AND failable).
        self._grouped_cols = np.nonzero(
            (self._link_group_col >= 0) & self._link_can_fail
        )[0]
        self._indep_cols = np.nonzero(self._indep_col >= 0)[0]

    @property
    def num_links(self) -> int:
        """Columns of the failure matrix (every link of every LAG)."""
        return len(self.links)

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """An ``(n, num_links)`` boolean failure matrix for ``n`` draws."""
        draws = rng.random((n, self._num_groups + self._num_indep))
        fail = np.zeros((n, self.num_links), dtype=bool)
        if self._num_groups and self._grouped_cols.size:
            group_fail = draws[:, : self._num_groups] < self._group_ps
            fail[:, self._grouped_cols] = group_fail[
                :, self._link_group_col[self._grouped_cols]
            ]
        if self._num_indep:
            indep_fail = draws[:, self._num_groups:] < self._indep_ps
            fail[:, self._indep_cols] = indep_fail[
                :, self._indep_col[self._indep_cols]
            ]
        return fail

    def scenario_for(self, row: np.ndarray) -> FailureScenario:
        """The :class:`FailureScenario` a failure-matrix row encodes."""
        return FailureScenario(self.links[j] for j in np.nonzero(row)[0])


def scenario_doc(scenario: FailureScenario) -> list:
    """A scenario as canonical JSON: sorted ``[u, v, link]`` triples."""
    return sorted([key[0], key[1], idx]
                  for key, idx in scenario.failed_links)


def scenario_from_doc(doc) -> FailureScenario:
    """Rebuild a scenario from its ``[u, v, link]`` triples."""
    return FailureScenario(((u, v), idx) for u, v, idx in doc)


def scenario_cache_key(instance_key: str, doc: list) -> str:
    """Content address of one scenario's delivered flow.

    ``instance_key`` is the job-key hash of the serialized
    ``(topology, demands, paths)`` documents, so any change to the
    network, the traffic, or the path set invalidates every scenario.
    """
    return job_key({
        "task": "availability.delivered",
        "instance": instance_key,
        "scenario": doc,
    })


def availability_chunk_task(payload: dict) -> dict:
    """Worker task: delivered flow for one chunk of distinct scenarios.

    Rebuilds the instance from its serialized documents, compiles one
    :class:`ScenarioResolver`, and resolves every scenario in the
    chunk.  The ``availability.chunk`` chaos site fails the whole
    chunk; it is keyed by chunk index only (no attempt), so a plan
    targeting it fails *every* retry and the parent's in-process
    fallback takes over -- exercising graceful degradation end to end.
    """
    params = payload["params"]
    if maybe_fire("availability.chunk",
                  key=f"chunk:{params['chunk_index']}"):
        raise RuntimeError(
            "chaos: injected availability chunk failure")
    topology, demands, paths = _instance_from_docs(payload["instance"])
    resolver = ScenarioResolver(topology, demands, paths)
    delivered = [
        float(resolver.delivered(scenario_from_doc(doc)))
        for doc in params["scenarios"]
    ]
    return {"chunk_index": params["chunk_index"], "delivered": delivered}


def availability_task(payload: dict) -> dict:
    """Sweep/service task: one full availability estimate per job.

    Makes Monte Carlo availability a first-class, service-submittable
    analysis: a :class:`~repro.runner.jobs.SweepSpec` with
    ``task="repro.failures.availability:availability_task"`` runs
    through the same queue/cache/HTTP machinery as degradation sweeps.
    The engine runs with ``num_workers=1`` inside the job -- service
    jobs are already parallelized at the job level, and nesting a
    process pool inside a pooled worker would oversubscribe the box.
    """
    params = payload.get("params", {})
    topology, demands, paths = _instance_from_docs(payload["instance"])
    config = MonteCarloConfig(
        samples=int(params.get("samples", 200)),
        seed=int(params.get("seed", 0)),
        degradation_threshold=float(
            params.get("degradation_threshold", 0.0)),
        num_workers=1,
        chunk_size=int(params.get("chunk_size", 32)),
        ci_width=params.get("ci_width"),
        ci_confidence=float(params.get("ci_confidence", 0.95)),
        max_samples=params.get("max_samples"),
    )
    estimate = estimate_availability_parallel(
        topology, demands, paths, config)
    return {
        "samples": estimate.samples,
        "healthy_flow": estimate.healthy_flow,
        "expected_degradation": estimate.expected_degradation,
        "availability": estimate.availability,
        "exceedance_probability": estimate.exceedance_probability,
        "worst_sampled": estimate.worst_sampled,
        "worst_scenario": scenario_doc(estimate.worst_scenario),
        "distinct_scenarios": estimate.distinct_scenarios,
        "rounds": estimate.rounds,
        "ci_width": estimate.ci_width,
    }


def _ci_width(degradations: list[float], healthy_flow: float,
              z: float) -> float | None:
    """Width of the normal-approximation CI on mean availability."""
    n = len(degradations)
    if n < 2:
        return None
    if healthy_flow <= 0:
        return 0.0
    avail = (healthy_flow - np.asarray(degradations)) / healthy_flow
    std = float(avail.std(ddof=1))
    return 2.0 * z * std / math.sqrt(n)


class _ChunkEvaluator:
    """Delivered flow for chunks of scenarios, pooled or in-process.

    Both paths produce values from a :class:`ScenarioResolver` compiled
    from the *serialized* instance documents -- the same LP, in the
    same variable order, whether it is built in a worker process or in
    the parent for the fallback path -- which is what makes the merge
    independent of where each chunk happened to run.
    """

    def __init__(self, instance: dict, workers: int,
                 runner_config: RunnerConfig | None, tracer):
        self.instance = instance
        self.workers = workers
        self.runner_config = runner_config or RunnerConfig()
        self.tracer = tracer
        self.chunk_fallbacks = 0
        self._resolver: ScenarioResolver | None = None

    def _parent_resolver(self) -> ScenarioResolver:
        if self._resolver is None:
            self._resolver = ScenarioResolver(
                *_instance_from_docs(self.instance))
        return self._resolver

    def _fallback(self, docs: list) -> list[float]:
        self.chunk_fallbacks += 1
        metrics().counter("availability.chunk_fallbacks").inc()
        resolver = self._parent_resolver()
        return [float(resolver.delivered(scenario_from_doc(doc)))
                for doc in docs]

    def evaluate(self, chunks: list[list], start_index: int
                 ) -> list[list[float]]:
        """Delivered flows per chunk, in chunk order."""
        if not chunks:
            return []
        if self.workers == 1:
            return self._evaluate_local(chunks, start_index)
        return self._evaluate_pool(chunks, start_index)

    def _evaluate_local(self, chunks, start_index):
        out = []
        resolver = self._parent_resolver()
        for offset, docs in enumerate(chunks):
            index = start_index + offset
            if maybe_fire("availability.chunk", key=f"chunk:{index}"):
                # In-process there is no worker to lose: the fault
                # degrades straight to the fallback path (counted, so
                # chaos tests can assert it fired) with identical
                # values, because the resolver is deterministic.
                out.append(self._fallback(docs))
                continue
            out.append([float(resolver.delivered(scenario_from_doc(doc)))
                        for doc in docs])
        return out

    def _evaluate_pool(self, chunks, start_index):
        jobs = [
            Job(payload={
                "task": CHUNK_TASK,
                "instance": self.instance,
                "params": {
                    "chunk_index": start_index + offset,
                    "scenarios": docs,
                },
            })
            for offset, docs in enumerate(chunks)
        ]
        # No chaos argument: the engine installed any explicit plan as
        # the ambient one, and run_sweep ships the ambient plan into
        # every worker on its own.
        outcome = run_sweep(
            jobs,
            num_workers=self.workers,
            cache=None,  # scenario-level caching happens in the parent
            config=self.runner_config,
            tracer=self.tracer,
            handle_signals=False,
        )
        by_key = {o.job.key: o for o in outcome.outcomes}
        out = []
        for offset, (job, docs) in enumerate(zip(jobs, chunks)):
            settled = by_key.get(job.key)
            if settled is not None and settled.ok:
                delivered = settled.result["delivered"]
                if len(delivered) != len(docs):
                    raise TopologyError(
                        f"chunk {start_index + offset} returned "
                        f"{len(delivered)} values for {len(docs)} "
                        f"scenarios"
                    )
                out.append([float(d) for d in delivered])
                continue
            error = settled.error if settled is not None \
                else "chunk did not settle (drained)"
            logger.warning(
                "availability chunk %d failed permanently (%s); "
                "re-evaluating its %d scenario(s) in the parent",
                start_index + offset, error, len(docs),
            )
            out.append(self._fallback(docs))
        return out


def estimate_availability_parallel(
    topology: Topology,
    demands: dict[Pair, float],
    paths: PathSet,
    config: MonteCarloConfig | None = None,
    *,
    cache: ResultCache | str | os.PathLike | None = None,
    chaos: FaultPlan | dict | None = None,
    runner_config: RunnerConfig | None = None,
) -> AvailabilityEstimate:
    """Monte Carlo availability, vectorized and parallel.

    Statistically identical -- bit for bit, per seed -- to the serial
    :func:`~repro.failures.montecarlo.estimate_availability`: the same
    scenario sequence, the same per-scenario delivered flows, the same
    reduction formulas.  What changes is the cost model: sampling is
    one matrix call per round, each distinct scenario is solved exactly
    once, solves fan out across worker processes, and a persistent
    cache carries delivered flows between runs.

    Args:
        topology: The WAN (all failable links need probabilities).
        demands: Offered traffic.
        paths: Configured primary/backup paths.
        config: Engine knobs (:class:`MonteCarloConfig`); defaults
            match the serial estimator.
        cache: Persistent delivered-flow cache (or a directory path
            for one); ``None`` disables memoization across runs.
        chaos: A fault plan for self-testing the degradation paths
            (shipped into workers like the sweep runner does).
        runner_config: Retry/backoff/timeout knobs for chunk dispatch.

    Returns:
        An :class:`AvailabilityEstimate` with the dedup/cache/fallback
        counters filled in.
    """
    config = config or MonteCarloConfig()
    demands = dict(demands)
    workers = config.resolved_workers()
    if isinstance(cache, (str, os.PathLike)):
        cache = ResultCache(cache)
    tracer = current_tracer()

    # Install an explicit chaos plan as the ambient one for the run so
    # both the in-process sites here and run_sweep's worker shipping
    # see it; a plan already installed via injected() works unchanged.
    if chaos is not None:
        plan = chaos if isinstance(chaos, FaultPlan) \
            else FaultPlan.from_dict(chaos)
        previous_plan = install_plan(plan)
        plan_installed = True
    else:
        plan_installed = False
    try:
        return _estimate(topology, demands, paths, config, cache,
                         runner_config, workers, tracer)
    finally:
        if plan_installed:
            install_plan(previous_plan)


def _estimate(topology, demands, paths, config, cache, runner_config,
              workers, tracer) -> AvailabilityEstimate:
    ser = _ser()
    instance = {
        "topology": ser.topology_to_dict(topology),
        "demands": ser.demands_to_dict(demands),
        "paths": ser.paths_to_dict(paths),
    }
    instance_key = job_key(instance)
    evaluator = _ChunkEvaluator(instance, workers, runner_config, tracer)
    z = NormalDist().inv_cdf(0.5 + config.ci_confidence / 2.0)
    adaptive = config.ci_width is not None
    max_samples = config.resolved_max_samples() if adaptive \
        else config.samples

    with tracer.span(
        "availability", samples=config.samples, workers=workers,
        adaptive=adaptive,
    ) as span:
        healthy = TotalFlowTE(primary_only=True).solve(
            topology, demands, paths
        )
        healthy_flow = healthy.total_flow
        sampler = ScenarioSampler(topology)
        rng = np.random.default_rng(config.seed)

        sample_rows: list[bytes] = []      # per sample, in draw order
        scenario_by_row: dict[bytes, FailureScenario] = {}
        doc_by_row: dict[bytes, list] = {}
        delivered_by_row: dict[bytes, float] = {}
        cache_hits = 0
        fresh_rows: list[bytes] = []
        chunks_dispatched = 0
        rounds = 0
        width: float | None = None

        while len(sample_rows) < max_samples:
            batch = min(config.samples, max_samples - len(sample_rows))
            rounds += 1
            with tracer.span("availability.sample", batch=batch):
                matrix = sampler.sample(rng, batch)
                pending: list[bytes] = []
                for row in matrix:
                    key = row.tobytes()
                    sample_rows.append(key)
                    if key not in scenario_by_row:
                        scenario_by_row[key] = sampler.scenario_for(row)
                        doc_by_row[key] = scenario_doc(
                            scenario_by_row[key])
                        pending.append(key)

            # Persistent memoization: answer what we can from the
            # delivered-flow cache, chunk only the misses.
            misses: list[bytes] = []
            for key in pending:
                if cache is not None:
                    hit = cache.get(
                        scenario_cache_key(instance_key, doc_by_row[key]))
                    if hit is not None:
                        delivered_by_row[key] = float(hit["delivered"])
                        cache_hits += 1
                        continue
                misses.append(key)

            if misses:
                chunks = [
                    misses[i:i + config.chunk_size]
                    for i in range(0, len(misses), config.chunk_size)
                ]
                with tracer.span("availability.evaluate",
                                 scenarios=len(misses),
                                 chunks=len(chunks)):
                    per_chunk = evaluator.evaluate(
                        [[doc_by_row[key] for key in chunk]
                         for chunk in chunks],
                        start_index=chunks_dispatched,
                    )
                chunks_dispatched += len(chunks)
                for chunk, values in zip(chunks, per_chunk):
                    for key, value in zip(chunk, values):
                        delivered_by_row[key] = value
                        fresh_rows.append(key)
                        if cache is not None:
                            cache.put(
                                scenario_cache_key(
                                    instance_key, doc_by_row[key]),
                                {"delivered": value},
                            )

            degradations = [
                healthy_flow - delivered_by_row[key]
                for key in sample_rows
            ]
            width = _ci_width(degradations, healthy_flow, z)
            if not adaptive:
                break
            if width is not None and width <= config.ci_width:
                break

        span.set(
            total_samples=len(sample_rows),
            distinct_scenarios=len(scenario_by_row),
            cache_hits=cache_hits,
            fresh_solves=len(fresh_rows),
            chunk_fallbacks=evaluator.chunk_fallbacks,
            rounds=rounds,
        )

    metrics().counter("availability.samples").inc(len(sample_rows))
    metrics().counter("availability.distinct").inc(len(scenario_by_row))
    metrics().counter("availability.cache_hits").inc(cache_hits)
    metrics().counter("availability.fresh_solves").inc(len(fresh_rows))

    array = np.asarray(degradations)
    availability = (
        float(np.mean((healthy_flow - array) / healthy_flow))
        if healthy_flow > 0 else 1.0
    )
    worst_index = int(np.argmax(array))
    return AvailabilityEstimate(
        expected_degradation=float(array.mean()),
        availability=availability,
        exceedance_probability=float(
            np.mean(array > config.degradation_threshold)
        ),
        worst_sampled=float(array.max()),
        worst_scenario=scenario_by_row[sample_rows[worst_index]],
        samples=len(sample_rows),
        healthy_flow=healthy_flow,
        degradations=[float(d) for d in degradations],
        distinct_scenarios=len(scenario_by_row),
        cache_hits=cache_hits,
        fresh_solves=len(fresh_rows),
        chunk_fallbacks=evaluator.chunk_fallbacks,
        rounds=rounds,
        ci_width=width,
    )
