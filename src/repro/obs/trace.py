"""Structured tracing: nested wall-time spans with a zero-cost off switch.

The paper's evaluation is about *where time goes* (Figure 10's runtime
scaling, Figure 16's timeout trade-off), so the repository needs a way
to attribute wall-clock to encoding, KKT embedding, compilation, and
branch-and-bound -- across a single analysis and across a whole sweep
campaign.  This module provides that substrate:

* :class:`Span` -- one named, timed region with free-form attributes,
  a stable id, and a parent id (the tree structure).
* :class:`Tracer` -- produces spans as context managers, collects them
  in memory on completion, and can re-emit *serialized* spans produced
  in another process (worker jobs) under a local parent.
* :class:`NullTracer` -- the default.  Its :meth:`~NullTracer.span`
  returns a shared no-op handle, so instrumented code pays one function
  call and nothing else when tracing is off; the hot path stays hot.

Tracers are installed ambiently (one per process, like
:func:`repro.resilience.install_plan`) so instrumentation sites never
need plumbing through every signature::

    from repro.obs import span, tracing, Tracer

    tracer = Tracer()
    with tracing(tracer):
        with span("analyze", objective="total_flow") as sp:
            ...
            sp.set(degradation=3.2)
    tracer.export()   # list of span dicts, roots first in start order
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager


class Span:
    """One timed region of a trace.

    Spans are created by :meth:`Tracer.span` and used as context
    managers; :meth:`set` attaches attributes (solver stats, statuses,
    counts) at any point before exit.

    Attributes:
        name: The phase name (``analyze``, ``compile``, ``milp_solve``, ...).
        span_id: Unique id within the trace.
        parent_id: Enclosing span's id, or ``None`` for a root.
        attrs: Free-form JSON-serializable attributes.
    """

    __slots__ = ("name", "span_id", "parent_id", "attrs", "start_unix",
                 "_tracer", "_t0", "duration_seconds")

    def __init__(self, tracer: "Tracer", name: str, span_id: str,
                 parent_id: str | None, attrs: dict):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.start_unix = time.time()
        self.duration_seconds = 0.0
        self._tracer = tracer
        self._t0 = time.perf_counter()

    def set(self, **attrs) -> "Span":
        """Attach attributes to the span; returns self for chaining."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration_seconds = time.perf_counter() - self._t0
        if exc_type is not None:
            self.attrs.setdefault("error", f"{exc_type.__name__}: {exc}")
        self._tracer._finish(self)
        return False

    def to_dict(self) -> dict:
        """The JSONL form of the span (see docs/operations.md)."""
        return {
            "type": "span",
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "start_unix": round(self.start_unix, 6),
            "duration_seconds": round(self.duration_seconds, 9),
            "attrs": self.attrs,
        }


class _NullSpan:
    """The shared do-nothing span handle the :class:`NullTracer` returns."""

    __slots__ = ()

    def set(self, **attrs) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class NullTracer:
    """The default tracer: every operation is a no-op.

    ``enabled`` is ``False`` so call sites that would do real work to
    *prepare* attributes (serializing stats, exporting worker spans) can
    skip it entirely.
    """

    enabled = False

    def span(self, name: str, **attrs) -> _NullSpan:
        """Return the shared no-op span handle."""
        return NULL_SPAN

    def record(self, name: str, seconds: float, **attrs) -> None:
        """No-op."""

    def merge(self, serialized, parent_id=None, prefix: str = "") -> None:
        """No-op."""

    def export(self) -> list[dict]:
        """A null tracer never collects anything."""
        return []


NULL_TRACER = NullTracer()


class Tracer:
    """Collects completed spans in memory, preserving tree structure.

    Spans nest through an explicit stack: the parent of a new span is
    whatever span is currently open.  Completed spans are appended to an
    in-memory list in *completion* order and optionally forwarded to a
    ``sink`` callable (e.g. a JSONL writer) as they finish --
    :meth:`export` re-sorts them into start order for readers.

    The tracer is intentionally not thread-safe: every process in this
    codebase traces from a single thread (worker processes install their
    own tracer inside :func:`repro.runner.executor.invoke_job`).
    """

    enabled = True

    def __init__(self, sink=None):
        self._sink = sink
        self._spans: list[dict] = []
        self._stack: list[str] = []
        self._ids = itertools.count(1)

    def span(self, name: str, **attrs) -> Span:
        """Open a new span under the currently open one (if any)."""
        parent = self._stack[-1] if self._stack else None
        sp = Span(self, name, f"s{next(self._ids)}", parent, attrs)
        self._stack.append(sp.span_id)
        return sp

    def _finish(self, sp: Span) -> None:
        # Tolerate out-of-order exits (generators, exceptions): pop back
        # to -- and including -- this span if it is still on the stack.
        if sp.span_id in self._stack:
            while self._stack and self._stack.pop() != sp.span_id:
                pass
        doc = sp.to_dict()
        self._spans.append(doc)
        if self._sink is not None:
            self._sink(doc)

    def record(self, name: str, seconds: float, **attrs) -> str:
        """Append an already-measured span (no live timing).

        Used when the duration was measured elsewhere -- e.g. a sweep
        job's wall seconds reported back from a worker process.

        Returns:
            The new span's id (usable as ``parent_id`` for :meth:`merge`).
        """
        parent = self._stack[-1] if self._stack else None
        sp = Span(self, name, f"s{next(self._ids)}", parent, dict(attrs))
        sp.duration_seconds = float(seconds)
        doc = sp.to_dict()
        self._spans.append(doc)
        if self._sink is not None:
            self._sink(doc)
        return sp.span_id

    def merge(self, serialized, parent_id: str | None = None,
              prefix: str = "") -> None:
        """Adopt spans serialized in another process into this trace.

        Args:
            serialized: Span dicts (``Tracer.export()`` output from the
                other process).
            parent_id: Local span id to hang the foreign roots under.
            prefix: Uniquifying prefix applied to the foreign ids so two
                workers' ``s1`` never collide (e.g. a job-key prefix).
        """
        for doc in serialized:
            adopted = dict(doc)
            adopted["id"] = f"{prefix}{doc['id']}"
            if doc.get("parent"):
                adopted["parent"] = f"{prefix}{doc['parent']}"
            else:
                adopted["parent"] = parent_id
            self._spans.append(adopted)
            if self._sink is not None:
                self._sink(adopted)

    def export(self) -> list[dict]:
        """All completed spans as dicts, sorted by start time."""
        return sorted(self._spans, key=lambda d: d.get("start_unix", 0.0))


# -- ambient installation --------------------------------------------------
_tracer: NullTracer | Tracer = NULL_TRACER
_shadow = threading.local()


def current_tracer():
    """The active tracer: this thread's shadow if one is set, else the
    process-wide installation (the :data:`NULL_TRACER` by default)."""
    shadowing = getattr(_shadow, "tracer", None)
    return _tracer if shadowing is None else shadowing


def install_tracer(tracer):
    """Install ``tracer`` as the process-wide ambient tracer; returns
    the previous one.

    Pass ``None`` (or the previous return value) to restore the no-op
    default.  The installation is process-global -- every thread
    without a shadow (:func:`shadow_tracer`) sees it, which is what
    lets a server install one tracer and collect spans from all its
    handler threads.
    """
    global _tracer
    previous = _tracer
    _tracer = tracer if tracer is not None else NULL_TRACER
    return previous


def shadow_tracer(tracer):
    """Shadow the ambient tracer *for this thread only*; returns the
    previous shadow (to pass back to :func:`unshadow_tracer`).

    This is the per-job isolation primitive: concurrent in-thread jobs
    each shadow with their own tracer so a campaign tracer never sees
    half-merged worker spans -- without racing each other on the
    process-global slot the way paired :func:`install_tracer` calls
    from sibling threads would.
    """
    previous = getattr(_shadow, "tracer", None)
    _shadow.tracer = tracer
    return previous


def unshadow_tracer(previous) -> None:
    """Restore this thread's shadow to ``previous`` (``None`` clears)."""
    _shadow.tracer = previous


def span(name: str, **attrs):
    """Open a span on the ambient tracer (no-op when tracing is off)."""
    return current_tracer().span(name, **attrs)


@contextmanager
def tracing(tracer):
    """Scope an ambient tracer installation: ``with tracing(t): ...``."""
    previous = install_tracer(tracer)
    try:
        yield tracer
    finally:
        install_tracer(previous)
