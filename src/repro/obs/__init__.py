"""``repro.obs``: zero-dependency structured tracing and metrics.

The observability layer the production-scale north star calls for:
nested wall-time spans (:mod:`repro.obs.trace`), a counter/gauge
registry (:mod:`repro.obs.metrics`), JSONL trace files and per-phase
aggregation (:mod:`repro.obs.sinks`), and a trace-schema validator
(:mod:`repro.obs.validate`).

The default tracer is a no-op (:data:`NULL_TRACER`), so instrumented
hot paths -- the solver's compile/solve, the analyzer's phases, sweep
workers -- cost one extra function call per phase when tracing is off.
Enable it ambiently::

    from repro.obs import Tracer, tracing, span

    with tracing(Tracer()) as tracer:
        with span("analyze"):
            ...
        spans = tracer.export()

or from the CLI with ``analyze --trace FILE`` / ``sweep --trace FILE``.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    install_metrics,
    metrics,
    metrics_scope,
)
from repro.obs.sinks import (
    JsonlTraceWriter,
    merge_phase_seconds,
    phase_totals,
    read_trace,
    write_trace,
)
from repro.obs.trace import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    current_tracer,
    install_tracer,
    shadow_tracer,
    span,
    tracing,
    unshadow_tracer,
)
from repro.obs.validate import (
    validate_trace_docs,
    validate_trace_file,
    validate_trace_lines,
)

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "install_metrics",
    "metrics",
    "metrics_scope",
    "JsonlTraceWriter",
    "merge_phase_seconds",
    "phase_totals",
    "read_trace",
    "write_trace",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "current_tracer",
    "install_tracer",
    "shadow_tracer",
    "unshadow_tracer",
    "span",
    "tracing",
    "validate_trace_docs",
    "validate_trace_file",
    "validate_trace_lines",
]
