"""Trace sinks and aggregation: JSONL files and per-phase totals.

The JSONL trace format is line-oriented so partial files (a killed
campaign) stay readable:

* line 1: ``{"type": "trace_header", "version": 1, "name": ...}``
* span lines: ``{"type": "span", "name", "id", "parent",
  "start_unix", "duration_seconds", "attrs"}``
* optional final line: ``{"type": "metrics", "counters", "gauges"}``

:func:`phase_totals` is the aggregation step sweep summaries use: it
rolls span durations up by name, so a campaign of hundreds of jobs
reports one ``{"milp_solve": 41.3, "compile": 0.09, ...}`` dict --
the end-to-end view connecting jobs to analyzer phases to solves.
"""

from __future__ import annotations

import json
import os

TRACE_SCHEMA_VERSION = 1


def trace_header(name: str = "trace") -> dict:
    """The header line every trace file starts with."""
    return {"type": "trace_header", "version": TRACE_SCHEMA_VERSION,
            "name": name}


class JsonlTraceWriter:
    """Streams trace lines to a JSONL file as spans complete.

    Usable directly as a :class:`~repro.obs.trace.Tracer` sink::

        writer = JsonlTraceWriter(path, name="sweep")
        tracer = Tracer(sink=writer.write)
        ...
        writer.close(metrics_snapshot)
    """

    def __init__(self, path: str | os.PathLike, name: str = "trace"):
        self.path = str(path)
        self._handle = open(self.path, "w", encoding="utf-8")
        self.write(trace_header(name))

    def write(self, doc: dict) -> None:
        """Append one JSON document as a line."""
        self._handle.write(json.dumps(doc, sort_keys=True) + "\n")

    def close(self, metrics_snapshot: dict | None = None) -> None:
        """Optionally append a metrics line, then close the file."""
        if metrics_snapshot is not None:
            self.write({"type": "metrics", **metrics_snapshot})
        self._handle.close()


def write_trace(path: str | os.PathLike, spans: list[dict],
                metrics_snapshot: dict | None = None,
                name: str = "trace") -> None:
    """Write a completed trace (header + spans + metrics) in one shot."""
    writer = JsonlTraceWriter(path, name=name)
    try:
        for doc in spans:
            writer.write(doc)
    finally:
        writer.close(metrics_snapshot)


def read_trace(path: str | os.PathLike) -> list[dict]:
    """Parse a JSONL trace file back into its document list."""
    docs = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                docs.append(json.loads(line))
    return docs


def phase_totals(spans: list[dict]) -> dict[str, dict[str, float]]:
    """Roll spans up by name: ``{name: {"seconds": s, "count": n}}``.

    Accepts span dicts (``type`` other than ``"span"`` is skipped, so a
    whole trace-file document list works too).
    """
    totals: dict[str, dict[str, float]] = {}
    for doc in spans:
        if doc.get("type", "span") != "span":
            continue
        entry = totals.setdefault(doc["name"], {"seconds": 0.0, "count": 0})
        entry["seconds"] += float(doc.get("duration_seconds", 0.0))
        entry["count"] += 1
    return totals


def merge_phase_seconds(into: dict[str, float], spans: list[dict]) -> None:
    """Accumulate span durations by name into a flat seconds dict."""
    for doc in spans:
        if doc.get("type", "span") != "span":
            continue
        name = doc["name"]
        into[name] = into.get(name, 0.0) + float(
            doc.get("duration_seconds", 0.0))
