"""Trace-file schema validation (the CI trace-smoke step's checker).

Checks a JSONL trace file for:

* parsable JSON on every line, with a version-1 ``trace_header`` first;
* every span carrying ``name``/``id``/``duration_seconds``, ids unique;
* every non-null ``parent`` referring to a span in the same file;
* no parent cycles;
* children's summed durations not exceeding their parent's duration
  (plus a small tolerance -- phases are timed independently, so exact
  equality is not expected, but children genuinely nest in time).

Run it standalone::

    PYTHONPATH=src python -m repro.obs.validate trace.jsonl
"""

from __future__ import annotations

import json
import sys

from repro.obs.sinks import TRACE_SCHEMA_VERSION

#: Slack allowed when comparing summed child durations to the parent:
#: absolute seconds plus a relative fraction of the parent duration.
NESTING_TOLERANCE_SECONDS = 0.05
NESTING_TOLERANCE_FRACTION = 0.02


def validate_trace_docs(docs: list[dict]) -> list[str]:
    """Validate parsed trace documents; returns a list of problems."""
    errors: list[str] = []
    if not docs:
        return ["trace is empty"]
    header = docs[0]
    if header.get("type") != "trace_header":
        errors.append("first line is not a trace_header")
    elif header.get("version") != TRACE_SCHEMA_VERSION:
        errors.append(
            f"unsupported trace version {header.get('version')!r} "
            f"(expected {TRACE_SCHEMA_VERSION})"
        )

    spans = [d for d in docs if d.get("type") == "span"]
    if not spans:
        errors.append("trace contains no spans")
    by_id: dict[str, dict] = {}
    for doc in spans:
        for field in ("name", "id", "duration_seconds"):
            if field not in doc:
                errors.append(f"span missing {field!r}: {doc}")
        sid = doc.get("id")
        if sid in by_id:
            errors.append(f"duplicate span id {sid!r}")
        elif sid is not None:
            by_id[sid] = doc
        if doc.get("duration_seconds", 0.0) < 0:
            errors.append(f"span {sid!r} has negative duration")

    children: dict[str, list[dict]] = {}
    for doc in spans:
        parent = doc.get("parent")
        if parent is None:
            continue
        if parent not in by_id:
            errors.append(
                f"span {doc.get('id')!r} references unknown parent {parent!r}"
            )
            continue
        children.setdefault(parent, []).append(doc)

    # Cycle check: walk each span to a root, bounded by the span count.
    for doc in spans:
        seen = set()
        node = doc
        while node is not None:
            sid = node.get("id")
            if sid in seen:
                errors.append(f"parent cycle through span {sid!r}")
                break
            seen.add(sid)
            parent = node.get("parent")
            node = by_id.get(parent) if parent is not None else None

    for parent_id, kids in children.items():
        parent = by_id[parent_id]
        if (parent.get("attrs") or {}).get("concurrent"):
            # A parallel region (e.g. a pooled sweep): child spans
            # overlap in wall time, so their durations may legitimately
            # sum past the parent's.
            continue
        parent_s = float(parent.get("duration_seconds", 0.0))
        child_s = sum(float(k.get("duration_seconds", 0.0)) for k in kids)
        allowed = parent_s * (1.0 + NESTING_TOLERANCE_FRACTION) \
            + NESTING_TOLERANCE_SECONDS
        if child_s > allowed:
            errors.append(
                f"children of span {parent_id!r} ({parent.get('name')!r}) "
                f"sum to {child_s:.6f}s > parent {parent_s:.6f}s"
            )
    return errors


def validate_trace_lines(lines) -> list[str]:
    """Validate raw JSONL lines; returns a list of problems."""
    docs = []
    errors = []
    for i, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            docs.append(json.loads(line))
        except json.JSONDecodeError as exc:
            errors.append(f"line {i} is not valid JSON: {exc}")
    return errors + validate_trace_docs(docs)


def validate_trace_file(path: str) -> list[str]:
    """Validate a trace file on disk; returns a list of problems."""
    with open(path, encoding="utf-8") as handle:
        return validate_trace_lines(handle)


def main(argv=None) -> int:
    """CLI entry point: exit 1 (with problems on stderr) when invalid."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if len(argv) != 1:
        print("usage: python -m repro.obs.validate TRACE.jsonl",
              file=sys.stderr)
        return 2
    problems = validate_trace_file(argv[0])
    if problems:
        for problem in problems:
            print(f"trace invalid: {problem}", file=sys.stderr)
        return 1
    docs = None
    with open(argv[0], encoding="utf-8") as handle:
        docs = [json.loads(line) for line in handle if line.strip()]
    num_spans = sum(1 for d in docs if d.get("type") == "span")
    print(f"{argv[0]}: ok ({num_spans} spans)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
