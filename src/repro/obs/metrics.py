"""A tiny counter/gauge metrics registry (zero dependencies).

Counters accumulate monotonically (jobs settled, solver fallbacks taken,
cache hits); gauges hold a last-written value (current queue depth,
largest big-M seen).  A registry snapshot is a plain dict, so it
serializes into the trace file as one ``{"type": "metrics"}`` line and
asserts cleanly in tests.

Like tracing (:mod:`repro.obs.trace`), the registry is ambient: call
:func:`metrics` anywhere for the process's active registry.  Unlike
tracing there is no null variant -- increments are two dict operations,
cheap enough to leave on unconditionally.

Service supervision counters (``/metricz``): the scheduler's
self-healing machinery reports ``service.jobs.recovered`` (startup
recovery of orphaned running jobs), ``service.jobs.reaped`` (expired
leases requeued by the reaper), ``service.jobs.quarantined`` (claim
budget exhausted), ``service.jobs.deadline_exceeded`` (end-to-end
deadline passed while queued or at claim), ``service.jobs.retried``
(quarantined jobs requeued by the API), and ``service.stale_settles``
(results from reaped-out workers discarded by the settle guard).

Distributed fleet metrics: the HTTP claim protocol reports
``service.claims_granted`` / ``service.claims_empty`` (claim requests
that found / missed queued work), ``service.claims_released``
(unstarted claims handed back by draining workers),
``service.remote_settles`` (results delivered over HTTP by remote
workers), and ``service.shed_claims`` (claim storms shed by the rate
limiter); the gauges ``service.fleet_size`` / ``service.fleet_capacity``
/ ``service.fleet_inflight`` mirror the registered worker roster.
"""

from __future__ import annotations

from contextlib import contextmanager


class Counter:
    """A monotonically increasing metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be nonnegative)."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge:
    """A last-write-wins metric with a convenience running maximum."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        self.value = float(value)

    def record_max(self, value: float) -> None:
        """Keep the largest value seen."""
        if value > self.value:
            self.value = float(value)


class MetricsRegistry:
    """Holds named counters and gauges; names are created on first use."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first access)."""
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first access)."""
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def snapshot(self) -> dict:
        """``{"counters": {...}, "gauges": {...}}`` with plain floats."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
        }

    def reset(self) -> None:
        """Drop every metric (test isolation)."""
        self._counters.clear()
        self._gauges.clear()


_registry = MetricsRegistry()


def metrics() -> MetricsRegistry:
    """The process's active metrics registry."""
    return _registry


def install_metrics(registry: MetricsRegistry | None) -> MetricsRegistry:
    """Swap the ambient registry; returns the previous one.

    ``None`` installs a fresh empty registry.
    """
    global _registry
    previous = _registry
    _registry = registry if registry is not None else MetricsRegistry()
    return previous


@contextmanager
def metrics_scope(registry: MetricsRegistry | None = None):
    """Scope a registry installation: ``with metrics_scope() as reg: ...``."""
    reg = registry if registry is not None else MetricsRegistry()
    previous = install_metrics(reg)
    try:
        yield reg
    finally:
        install_metrics(previous)
