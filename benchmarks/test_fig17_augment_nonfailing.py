"""Figure 17: augments whose added capacity cannot fail.

The scenario prior work (QARC, Robust) models: augment existing LAGs
assuming the new capacity is reliable.  Paper claim: "Raha easily handles
it in 2 steps" for fixed demands, and within a few steps across slacks;
the non-failing variant needs no more steps than the failable one.
"""

from benchmarks.conftest import run_once
from repro import RahaConfig, augment_existing_lags, demand_envelope
from repro.analysis.reporting import print_table

SLACKS = [0, 100, 200]


def test_fig17_augment_with_reliable_capacity(benchmark, augment_wan):
    wan = augment_wan
    paths = wan.paths(num_primary=2, num_backup=1)

    def experiment():
        rows = []
        for slack in SLACKS:
            config = RahaConfig(
                demand_bounds=demand_envelope(wan.avg_demands, slack=slack),
                probability_threshold=1e-4,
                time_limit=45, mip_rel_gap=0.01,
            )
            result = augment_existing_lags(
                wan.topology, paths, config,
                new_links_can_fail=False,
                tolerance=0.02 * wan.topology.average_lag_capacity(),
                max_steps=8,
            )
            rows.append((slack, result.num_steps, result.converged,
                         result.average_reduction,
                         result.total_links_added))
        return rows

    rows = run_once(benchmark, experiment)
    print_table(
        "Figure 17: augment steps / reduction / links added vs slack "
        "(non-failing new capacity, T = 1e-4)",
        ["slack (%)", "steps", "converged", "avg reduction", "links added"],
        rows,
    )
    for slack, steps, converged, *_ in rows:
        assert converged
        # Reliable capacity converges in a handful of steps (the paper
        # reports ~2 on its instance; wider envelopes need a few more).
        assert steps <= 8


def test_fig17_fixed_demand_two_steps(benchmark, augment_wan):
    """The paper's fixed-demand case: sufficient augment in ~2 steps."""
    wan = augment_wan
    paths = wan.paths(num_primary=2, num_backup=1)

    def experiment():
        config = RahaConfig(
            fixed_demands=dict(wan.peak_demands),
            probability_threshold=1e-4,
            time_limit=45, mip_rel_gap=0.01,
        )
        return augment_existing_lags(
            wan.topology, paths, config, new_links_can_fail=False,
            tolerance=0.02 * wan.topology.average_lag_capacity(),
            max_steps=6,
        )

    result = run_once(benchmark, experiment)
    print_table(
        "Figure 17 (fixed max demand): augment convergence",
        ["steps", "converged", "links added"],
        [(result.num_steps, result.converged, result.total_links_added)],
    )
    assert result.converged
    assert result.num_steps <= 3
