"""Registered bench cases wrapping the repo's benchmark scenarios.

This is the registration module ``python -m repro bench`` loads by
default.  Each case is a zero-argument callable around one
performance-relevant path -- the solver-layer compile fast path, a
Figure 5 sweep cell, a cache replay, the Monte Carlo availability
engine -- sized so the ``smoke`` tag finishes in seconds (the CI set,
gated against ``benchmarks/baseline.json`` on every push) and the
``full`` tag covers the slower local set.

Cases return flat metric dicts (solver build/compile/solve seconds,
cache hit counts, matrix sizes); wall time and peak RSS are measured
by the harness (:mod:`repro.bench.harness`).  Shared instances are
built once and memoized so repetition timings measure the scenario,
not `bench_wan` setup.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.bench.registry import bench_case

_MEMO: dict[str, object] = {}


def _standard_wan():
    """The figure benchmarks' standard WAN (memoized)."""
    if "wan" not in _MEMO:
        from benchmarks.conftest import WAN_KWARGS
        from repro.analysis.experiments import bench_wan

        _MEMO["wan"] = bench_wan(**WAN_KWARGS)
    return _MEMO["wan"]


def _compile_instance():
    """The compile microbenchmark's larger WAN + demands (memoized)."""
    if "compile" not in _MEMO:
        from repro.analysis.experiments import bench_wan

        net = bench_wan(num_regions=4, nodes_per_region=6, num_pairs=48,
                        demand_to_capacity=1.4, seed=1)
        _MEMO["compile"] = (net.topology, dict(net.avg_demands))
    return _MEMO["compile"]


@bench_case(
    "compile.edge_mcf_batch", tags=("smoke", "full"),
    description="array fast-path edge-MCF build + CSR compile")
def _case_compile_batch():
    from benchmarks.test_build_microbench import _edge_mcf_batch

    topology, demands = _compile_instance()
    model = _edge_mcf_batch(topology, demands)
    model._ensure_compiled()
    return {"rows": model.num_constraints, "cols": model.num_vars}


@bench_case(
    "compile.edge_mcf_scalar", tags=("full",),
    description="pre-fast-path scalar edge-MCF build + compile "
                "(the batch case's reference point)")
def _case_compile_scalar():
    from benchmarks.test_build_microbench import _edge_mcf_scalar

    topology, demands = _compile_instance()
    model = _edge_mcf_scalar(topology, demands)
    model._ensure_compiled()
    return {"rows": model.num_constraints, "cols": model.num_vars}


@bench_case(
    "solve.fig5_cell", tags=("smoke", "full"),
    description="one Figure 5 sweep cell end to end (encode + MILP "
                "solve + verify), uncached")
def _case_fig5_cell():
    from benchmarks.conftest import TIME_LIMIT
    from repro.analysis.experiments import degradation_sweep_spec
    from repro.runner.executor import run_sweep

    wan = _standard_wan()
    if "fig5_spec" not in _MEMO:
        paths = wan.paths(num_primary=2, num_backup=1)
        _MEMO["fig5_spec"] = degradation_sweep_spec(
            wan, paths, "avg",
            [{"threshold": None, "max_failures": 1}],
            time_limit=TIME_LIMIT, name="bench-fig5-cell",
        )
    outcome = run_sweep(_MEMO["fig5_spec"], num_workers=1,
                        handle_signals=False)
    outcome.raise_on_error()
    totals = outcome.stats_totals()
    return {
        "build_seconds": totals["build_seconds"],
        "compile_seconds": totals["compile_seconds"],
        "solve_seconds": totals["solve_seconds"],
    }


def tiny_task(payload: dict) -> dict:
    """A near-free sweep task: makes cache traffic the measured cost."""
    cell = payload["params"]["cell"]
    return {"cell": cell, "value": float(cell * cell)}


@bench_case(
    "cache.replay", tags=("smoke", "full"),
    description="populate a 32-job result cache, then replay it "
                "(key hashing + checksummed reads dominate)")
def _case_cache_replay():
    from repro.runner.executor import run_sweep
    from repro.runner.jobs import Job

    jobs = [
        Job({"task": "benchmarks.bench_cases:tiny_task",
             "instance": {}, "params": {"cell": i}})
        for i in range(32)
    ]
    with tempfile.TemporaryDirectory() as tmp:
        cache_dir = Path(tmp) / "cache"
        run_sweep(jobs, num_workers=1, cache=cache_dir,
                  handle_signals=False)
        started = time.perf_counter()
        replay = run_sweep(jobs, num_workers=1, cache=cache_dir,
                           handle_signals=False)
        replay_seconds = time.perf_counter() - started
    return {
        "cache_hits": replay.num_cached,
        "replay_seconds": replay_seconds,
    }


@bench_case(
    "availability.mc_serial", tags=("full",),
    description="Monte Carlo availability estimate (serial, 100 "
                "samples, resolver-cached re-solves)")
def _case_availability():
    from repro.core.config import MonteCarloConfig
    from repro.failures.availability import estimate_availability_parallel

    wan = _standard_wan()
    if "avail_paths" not in _MEMO:
        _MEMO["avail_paths"] = wan.paths(num_primary=2, num_backup=1)
    config = MonteCarloConfig(samples=100, seed=0, num_workers=1,
                              chunk_size=32)
    estimate = estimate_availability_parallel(
        wan.topology, dict(wan.avg_demands), _MEMO["avail_paths"], config)
    return {
        "distinct_scenarios": estimate.distinct_scenarios,
        "fresh_solves": estimate.fresh_solves,
    }


@bench_case(
    "store.claim_contention", tags=("smoke", "full"),
    description="4 threads racing the fenced claim path of one "
                "JobStore: 200 claim+settle round-trips (SQLite "
                "transaction + fencing-token cost dominates)")
def _case_claim_contention():
    import threading

    from repro.service.store import JobStore

    num_threads, num_jobs = 4, 200
    with tempfile.TemporaryDirectory() as tmp:
        store = JobStore(Path(tmp) / "bench.db")
        try:
            store.submit(
                "bench-claims", "claim-bench", "bench",
                [(f"job-{i:04d}", f"job {i}", {"value": i})
                 for i in range(num_jobs)])
            settled = []
            lock = threading.Lock()

            def drain(worker_id):
                while True:
                    claim = store.claim(lease_seconds=60.0,
                                        worker_id=worker_id)
                    if claim is None:
                        return
                    store.settle(claim["analysis_id"], claim["key"],
                                 "done", status="done",
                                 token=claim["claim_token"])
                    with lock:
                        settled.append(claim["key"])

            threads = [threading.Thread(target=drain, args=(f"t{i}",))
                       for i in range(num_threads)]
            started = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            elapsed = time.perf_counter() - started
        finally:
            store.close()
    assert len(settled) == num_jobs, f"lost claims: {len(settled)}"
    return {
        "claims_settled": len(settled),
        "claims_per_second": num_jobs / elapsed,
    }
