"""Figure 16: solver timeouts affect runtime, not solution quality.

Paper claim: "Timeouts do not impact the quality of the results Raha
produces no matter what constraints we run it under (as long as we start
with a reasonable timeout)" -- the solver typically finds the optimum
early and spends the remaining budget proving optimality.

We sweep the solver time limit (scaled from the paper's 500-4000 s to
this instance's scale) and check the found degradation is constant.
"""



from benchmarks.conftest import run_once
from repro import RahaAnalyzer, RahaConfig
from repro.analysis.reporting import print_table

TIMEOUTS = [2.0, 5.0, 15.0, 60.0]


def test_fig16_timeout_sweep(benchmark, wan):
    paths = wan.paths(num_primary=2, num_backup=1)

    def experiment():
        rows = []
        for timeout in TIMEOUTS:
            config = RahaConfig(
                fixed_demands=dict(wan.avg_demands),
                probability_threshold=1e-4,
                time_limit=timeout,
                verify=False,  # a timed-out incumbent may not be optimal
            )
            result = RahaAnalyzer(wan.topology, paths, config).analyze()
            rows.append((
                timeout, result.normalized_degradation,
                result.solve_seconds, result.status,
            ))
        return rows

    rows = run_once(benchmark, experiment)
    print_table(
        "Figure 16: timeout vs runtime and solution quality",
        ["timeout (s)", "degradation", "solve (s)", "status"], rows,
    )
    degradations = [deg for _, deg, _, _ in rows]
    # Quality is timeout-independent once the timeout is reasonable.
    assert max(degradations) - min(degradations) <= 1e-4 * max(
        1.0, abs(max(degradations))
    )
    # And no run exceeds its budget by more than scheduling noise.
    for timeout, _, solve_seconds, _ in rows:
        assert solve_seconds <= timeout + 5.0
