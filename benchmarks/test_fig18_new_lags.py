"""Figure 18: adding brand-new LAGs until no probable degradation.

Paper setup: operators list the edges that are physically viable; Raha
finds the smallest subset (and link counts) that reduce the probable
degradation to zero, assuming the new capacity cannot fail.  Uses the
edge formulation of Appendix C with paths recomputed after each step.

The bench analyzes the demand pairs *without* an existing direct LAG and
offers their direct edges as the candidate list -- the canonical
new-LAG planning question ("should we build this shortcut?").
"""

from benchmarks.conftest import run_once
from repro import PathSet, RahaConfig, augment_new_lags, demand_envelope
from repro.analysis.reporting import print_table

SLACKS = [0, 100]


def test_fig18_new_lag_augments(benchmark, augment_wan):
    wan = augment_wan
    # Pairs with no direct LAG; their direct edges are the candidates.
    pairs = [p for p in wan.pairs
             if wan.topology.lag_between(*p) is None][:4]
    assert pairs, "bench instance must contain non-adjacent demand pairs"
    candidates = sorted({tuple(sorted(p)) for p in pairs})
    demands = wan.avg_demands.restricted_to(pairs)

    def experiment():
        rows = []
        for slack in SLACKS:
            def path_factory(topo):
                return PathSet.k_shortest(topo, pairs, num_primary=2,
                                          num_backup=1)

            def config_factory(_paths, slack=slack):
                return RahaConfig(
                    demand_bounds=demand_envelope(demands, slack=slack),
                    probability_threshold=1e-4,
                    time_limit=45, mip_rel_gap=0.01,
                )

            result = augment_new_lags(
                wan.topology, path_factory, config_factory,
                candidate_edges=candidates,
                new_links_can_fail=False,
                tolerance=0.02 * wan.topology.average_lag_capacity(),
                max_steps=8,
            )
            new_lags = {
                key
                for step in result.steps
                for key in step.links_added
                if wan.topology.lag_between(*key) is None
            }
            rows.append((slack, result.num_steps, result.converged,
                         result.total_links_added, len(new_lags)))
        return rows

    rows = run_once(benchmark, experiment)
    print_table(
        "Figure 18: new-LAG augments vs slack (non-failing capacity)",
        ["slack (%)", "steps", "converged", "links added", "new LAGs"],
        rows,
    )
    for slack, steps, converged, links, _ in rows:
        assert converged, f"new-LAG augment did not converge at {slack}%"
    # Wider envelopes require at least as much new capacity.
    links_series = [links for _, _, _, links, _ in rows]
    assert links_series == sorted(links_series)
    # At the widest envelope the augment actually built something new.
    assert rows[-1][4] >= 1 or rows[-1][3] == 0
