"""Ablation: why k-resilient TE (FFC) does not prevent the incident.

Section 2.2's argument: operators provision with FFC-style "resilient to
up to k failures" TE, but "there is a point where the network no longer
has sufficient capacity available for these algorithms" -- probable
scenarios with more than k failures break the guarantee.

This benchmark provisions the bench WAN with FFC at protection levels
f in {0, 1, 2} and then measures the bandwidth that actually survives
the *probable* worst-case scenario Raha finds (T = 1e-4):

* within-contract failures (any f LAGs) never dip below the guarantee
  (FFC's promise, verified);
* the probable scenario -- more failures than the contract covers --
  loses traffic at every protection level, while higher protection also
  costs guaranteed throughput up front.
"""



from benchmarks.conftest import run_once
from repro import RahaAnalyzer, RahaConfig
from repro.analysis.reporting import print_table
from repro.te import FfcTE

PROTECTION_LEVELS = [0, 1, 2]


def _surviving_guarantee(topology, paths, sol, scenario):
    """Bandwidth the FFC allocation still delivers under a scenario."""
    down = scenario.down_lags(topology)
    residual = scenario.residual_capacities(topology)
    survived = 0.0
    for pair, dp in paths.items():
        per_path = []
        for path in dp.paths:
            b = sol.path_flows.get((pair, path), 0.0)
            if b <= 0:
                continue
            shrink = 1.0
            for lag in topology.lags_on_path(path):
                if lag.key in down:
                    shrink = 0.0
                    break
                if lag.capacity > 0:
                    shrink = min(shrink, residual[lag.key] / lag.capacity)
            per_path.append(b * shrink)
        survived += min(sum(per_path), sol.pair_flows.get(pair, 0.0))
    return survived


def test_ablation_ffc_vs_probable_failures(benchmark, wan):
    paths = wan.paths(num_primary=3, num_backup=0)
    demands = dict(wan.avg_demands)

    def experiment():
        # The probable worst-case scenario for these demands.
        raha = RahaAnalyzer(
            wan.topology, paths,
            RahaConfig(fixed_demands=demands, probability_threshold=1e-4,
                       time_limit=60, mip_rel_gap=0.01),
        ).analyze()
        rows = []
        for level in PROTECTION_LEVELS:
            solver = FfcTE(num_failures=level)
            sol = solver.solve(wan.topology, demands, paths)
            assert sol.feasible
            assert solver.verify_guarantee(wan.topology, paths, sol)
            guaranteed = sol.total_flow
            survived = _surviving_guarantee(
                wan.topology, paths, sol, raha.scenario
            )
            rows.append((
                level, guaranteed, survived, guaranteed - survived,
                raha.scenario.num_failed_links,
            ))
        return rows

    rows = run_once(benchmark, experiment)
    print_table(
        "Ablation: FFC protection vs Raha's probable scenario (T = 1e-4)",
        ["FFC f", "guaranteed", "survives probable", "shortfall",
         "scenario failures"], rows,
    )
    # Protection costs guaranteed throughput up front...
    guarantees = [g for _, g, *_ in rows]
    assert guarantees == sorted(guarantees, reverse=True)
    # ...the probable scenario involves more failures than any contract...
    for level, *_, failures in rows:
        assert failures > level
    # ...the unprotected allocation loses traffic to it...
    f0_guaranteed, f0_shortfall = rows[0][1], rows[0][3]
    assert f0_shortfall > 0
    # ...and surviving it via FFC costs more up-front capacity than the
    # failure itself takes from the unprotected network -- the protection
    # premium that motivates Raha-style analysis instead (Section 2.2).
    for level, guaranteed, survived, shortfall, _ in rows[1:]:
        if shortfall <= 1e-6:  # this contract happens to survive
            assert guaranteed <= f0_guaranteed - f0_shortfall + 1e-6
