"""Table 3: degradations on the B4 topology.

The paper's grid: probability threshold T x number of backup paths x
failure budget, demands capped at half the average LAG capacity so no
single demand creates a bottleneck, normalization by the average LAG
capacity (5000).  Published pattern: the degradation equals the number
of *backup paths + budget* structure -- higher budgets and more backups
both raise the worst case found, and unlimited-failure runs dominate.
"""

from benchmarks.conftest import run_once
from repro import (
    PathSet,
    RahaAnalyzer,
    RahaConfig,
    demand_envelope,
    gravity_demands,
)
from repro.analysis.reporting import print_table
from repro.network.demand import top_pairs
from repro.network.zoo import b4

ROWS = [
    # (threshold, num_backup, max_failures or None)
    (1e-1, 1, 1), (1e-1, 1, 2), (1e-1, 1, 4), (1e-1, 1, None),
    (1e-1, 2, 1), (1e-2, 1, 1), (1e-2, 1, 2), (1e-2, 1, None),
]


def test_table3_b4_grid(benchmark):
    topology = b4(seed=0)
    demands = gravity_demands(
        topology, scale=15 * topology.average_lag_capacity(), seed=0
    )
    pairs = top_pairs(demands, 8)
    demands = demands.restricted_to(pairs).capped(
        topology.average_lag_capacity() / 2
    )

    def experiment():
        out = []
        for threshold, backups, budget in ROWS:
            paths = PathSet.k_shortest(
                topology, pairs, num_primary=4, num_backup=backups
            )
            config = RahaConfig(
                demand_bounds=demand_envelope(demands),
                probability_threshold=None if budget is not None else threshold,
                max_failures=budget,
                time_limit=60,
                mip_rel_gap=0.01,
            )
            result = RahaAnalyzer(topology, paths, config).analyze()
            out.append((
                threshold if budget is None else "-",
                backups,
                budget if budget is not None else "inf",
                result.normalized_degradation,
            ))
        return out

    rows = run_once(benchmark, experiment)
    print_table(
        "Table 3: B4 degradation grid (normalized by avg LAG capacity)",
        ["T", "backups", "max failures", "degradation"], rows,
    )
    by_key = {(r[1], r[2]): r[3] for r in rows}
    # Degradation grows with the failure budget (Table 3's core pattern).
    assert by_key[(1, 1)] <= by_key[(1, 2)] + 1e-6 <= by_key[(1, 4)] + 1e-5
    # Unlimited probable failures find at least as much as small budgets.
    assert by_key[(1, "inf")] >= by_key[(1, 1)] - 1e-6
