"""Figure 7: more demand slack, more degradation.

Paper claim: "Raha can find higher and higher degradations if it searches
across a larger space of demands" -- the degradation grows with the slack
for every failure budget, and the unlimited-failure series dominates the
bounded ones.
"""

from benchmarks.conftest import run_once
from repro import RahaAnalyzer, RahaConfig, demand_envelope
from repro.analysis.reporting import print_table

SLACKS = [0, 100, 400]
BUDGETS = [2, None]


def test_fig7_degradation_vs_slack(benchmark, wan):
    paths = wan.paths(num_primary=2, num_backup=1)

    base = wan.avg_demands.scaled(0.35)

    def experiment():
        rows = []
        for budget in BUDGETS:
            for slack in SLACKS:
                config = RahaConfig(
                    demand_bounds=demand_envelope(base, slack=slack),
                    max_failures=budget,
                    probability_threshold=(
                        1e-4 if budget is None else None
                    ),
                    time_limit=45,
                    mip_rel_gap=0.01,
                )
                result = RahaAnalyzer(wan.topology, paths, config).analyze()
                rows.append((
                    "inf" if budget is None else budget, slack,
                    result.normalized_degradation,
                ))
        return rows

    rows = run_once(benchmark, experiment)
    print_table(
        "Figure 7: degradation vs demand slack per failure budget",
        ["max failures", "slack (%)", "degradation"], rows,
    )
    series: dict = {}
    for budget, slack, deg in rows:
        series.setdefault(budget, []).append(deg)
    # Each series is nondecreasing in the slack (nested search spaces).
    for budget, degs in series.items():
        for a, b in zip(degs, degs[1:]):
            assert b >= a - 1e-5, f"series {budget} decreased"
