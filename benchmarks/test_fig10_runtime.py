"""Figure 10: what influences Raha's runtime.

Paper claims (Section 8.5): runtime grows with the number of primary
paths (more variables, plus path computation time) and as the probability
threshold decreases; removing the failure-count / probability constraints
makes Raha *faster* (fewer variables and constraints).  All runs finish
within the hour on the paper's hardware; minutes here.

Runtimes include path computation, as the paper's do.
"""

from benchmarks.conftest import run_once
from repro import RahaConfig, demand_envelope
from repro.analysis.experiments import timed_analysis
from repro.analysis.reporting import print_table

PRIMARY_COUNTS = [1, 2, 4, 8]
THRESHOLDS = [1e-1, 1e-4, 1e-7]
BUDGETS = [1, 4, 16]


def _joint_config(wan, **kwargs):
    kwargs.setdefault("time_limit", 120.0)
    return RahaConfig(demand_bounds=demand_envelope(wan.peak_demands),
                      **kwargs)


def test_fig10_runtime_vs_primary_paths(benchmark, wan):
    def experiment():
        rows = []
        for count in PRIMARY_COUNTS:
            paths = wan.paths(num_primary=count, num_backup=1)
            result, wall = timed_analysis(
                wan.topology, paths,
                _joint_config(wan, probability_threshold=1e-4),
            )
            rows.append((count, wall, result.num_variables,
                         result.num_binaries))
        return rows

    rows = run_once(benchmark, experiment)
    print_table(
        "Figure 10 (left): runtime vs number of primary paths",
        ["primary paths", "wall (s)", "variables", "binaries"], rows,
    )
    # Model size grows with the path count (the paper's stated mechanism).
    sizes = [vars_ for _, _, vars_, _ in rows]
    assert sizes == sorted(sizes)


def test_fig10_runtime_vs_threshold(benchmark, wan):
    paths = wan.paths(num_primary=2, num_backup=1)

    def experiment():
        rows = []
        for threshold in THRESHOLDS:
            result, wall = timed_analysis(
                wan.topology, paths,
                _joint_config(wan, probability_threshold=threshold),
            )
            rows.append((threshold, wall, result.status))
        # The unconstrained run ("remove the constraints on probability"):
        result, wall = timed_analysis(wan.topology, paths,
                                      _joint_config(wan))
        rows.append(("none", wall, result.status))
        return rows

    rows = run_once(benchmark, experiment)
    print_table(
        "Figure 10 (middle): runtime vs probability threshold",
        ["threshold", "wall (s)", "status"], rows,
    )
    # The paper: dropping the probability constraint is fast ("finishes
    # in less than 2 minutes" on their scale) -- here it must not be the
    # slowest configuration by a large margin.
    unconstrained = rows[-1][1]
    slowest = max(wall for _, wall, _ in rows)
    assert unconstrained <= slowest + 1e-9


def test_fig10_runtime_vs_max_failures(benchmark, wan):
    paths = wan.paths(num_primary=2, num_backup=1)

    def experiment():
        rows = []
        for budget in BUDGETS:
            result, wall = timed_analysis(
                wan.topology, paths, _joint_config(wan, max_failures=budget),
            )
            rows.append((budget, wall, result.normalized_degradation))
        result, wall = timed_analysis(wan.topology, paths,
                                      _joint_config(wan))
        rows.append(("inf", wall, result.normalized_degradation))
        return rows

    rows = run_once(benchmark, experiment)
    print_table(
        "Figure 10 (right): runtime vs max number of failures",
        ["max failures", "wall (s)", "degradation"], rows,
    )
    # Degradation grows with the budget; the unconstrained run dominates.
    degs = [deg for _, _, deg in rows]
    assert degs == sorted(degs)
