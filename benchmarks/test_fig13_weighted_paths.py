"""Figure 13: diversity-weighted path selection tames fate-sharing.

Paper claim: repeating Figure 12's experiment with paths selected under
LAG-usage weights, "there is a point after which the degradation
decreases as we add more paths" -- weighted selection spreads paths over
disjoint LAGs, so extra paths eventually reduce the worst case instead of
feeding shared failure modes.
"""

from benchmarks.conftest import run_once
from repro import RahaAnalyzer, RahaConfig, demand_envelope
from repro.analysis.reporting import print_table

PRIMARY_COUNTS = [1, 2, 4, 8]


def test_fig13_weighted_path_selection(benchmark, wan):
    def experiment():
        rows = []
        for count in PRIMARY_COUNTS:
            for weighted in (False, True):
                paths = wan.paths(num_primary=count, num_backup=1,
                                  weighted=weighted)
                config = RahaConfig(
                    demand_bounds=demand_envelope(wan.peak_demands),
                    probability_threshold=1e-4,
                    time_limit=90,
                    mip_rel_gap=0.01,
                )
                result = RahaAnalyzer(wan.topology, paths, config).analyze()
                rows.append((
                    count, "weighted" if weighted else "ksp",
                    result.normalized_degradation,
                ))
        return rows

    rows = run_once(benchmark, experiment)
    print_table(
        "Figure 13: degradation vs primary paths, weighted vs plain KSP",
        ["primary paths", "selection", "degradation"], rows,
    )
    weighted = {c: d for c, label, d in rows if label == "weighted"}
    # The paper's claim: with weighted selection, enough paths reduce the
    # degradation below the single-path worst case.
    assert min(weighted.values()) <= weighted[1] + 1e-6
