"""Section 8.5 "On other objectives": worst-case MLU degradation.

Paper claims: with the objective switched to MLU, Raha "finished in 15
minutes in all cases and found a degradation of 1.06, 1.32, 1.26 for 0,
10%, and 20% slack respectively.  Degradation jumps to 3.12 when we set
slack to 40%" -- i.e. modest growth over small slacks, then a jump.

MLU degradations are reported unnormalized; demands come from a gravity
model, as in the paper's MLU runs.
"""

from benchmarks.conftest import run_once
from repro import RahaAnalyzer, RahaConfig, demand_envelope, gravity_demands
from repro.analysis.reporting import print_table


SLACKS = [0, 10, 20, 40]


def test_mlu_degradation_vs_slack(benchmark):
    # MLU semantics ignore partial failures (Appendix A: utilization is
    # measured against the original capacities and failures act only
    # through whole-path kills), so this figure runs on a single-link-LAG
    # variant of the bench WAN where probable failures take LAGs down
    # outright.  The MLU game is also the hardest MILP in the suite, so
    # only the top pairs are analyzed.
    from repro.analysis.experiments import bench_wan

    net = bench_wan(num_regions=3, nodes_per_region=5, num_pairs=5,
                    single_link_share=1.0, seed=1)
    pairs = net.pairs
    paths = net.paths(num_primary=2, num_backup=1)
    base = gravity_demands(net.topology, scale=100, pairs=pairs, seed=3)
    scale = 0.6 * net.topology.average_lag_capacity() / max(base.values())
    base = base.scaled(scale)
    wan = net

    def experiment():
        rows = []
        for slack in SLACKS:
            config = RahaConfig(
                objective="mlu",
                demand_bounds=demand_envelope(base, slack=slack),
                probability_threshold=1e-4,
                time_limit=90,
                mip_rel_gap=0.02,
            )
            result = RahaAnalyzer(wan.topology, paths, config).analyze()
            rows.append((slack, result.degradation, result.healthy_value,
                         result.failed_value))
        return rows

    rows = run_once(benchmark, experiment)
    print_table(
        "Section 8.5: worst-case MLU degradation vs demand slack",
        ["slack (%)", "U degradation", "healthy U", "failed U"], rows,
    )
    degs = [deg for _, deg, _, _ in rows]
    # More slack cannot shrink the worst case (the search space nests).
    for earlier, later in zip(degs, degs[1:]):
        assert later >= earlier - 1e-6
    # The paper's pattern: a sizable jump by 40% slack.
    assert degs[-1] > degs[0]
