"""Table 4: the Cogentco-shaped topology with clustering.

Paper setup: Cogentco (197 nodes / 486 directed edges), 4 primary + 1
backup paths, 8 clusters, normalization by the average LAG capacity
(1000).  Published pattern: with bounded failure budgets the degradation
tracks the budget (1 -> 1, 2 -> 2, 4 -> 4); unlimited probable failures
find substantially more (6 at T = 1e-1, 10.5 at T = 1e-2).

We run the same grid with a reduced pair count and 4 clusters so the
HiGHS pipeline fits the CI budget; the budget-tracking pattern and the
dominance of the unlimited rows are asserted.
"""

from benchmarks.conftest import run_once
from repro import (
    PathSet,
    RahaAnalyzer,
    RahaConfig,
    analyze_with_clustering,
    demand_envelope,
    gravity_demands,
)
from repro.analysis.reporting import print_table
from repro.network.demand import top_pairs
from repro.network.zoo import cogentco_like

BUDGET_ROWS = [1, 2, 4]
THRESHOLD_ROWS = [1e-1, 1e-2]


def test_table4_cogentco_grid(benchmark):
    topology = cogentco_like(seed=0)
    demands = gravity_demands(
        topology, scale=150 * topology.average_lag_capacity(), seed=0
    )
    pairs = top_pairs(demands, 6)
    demands = demands.restricted_to(pairs).capped(
        topology.average_lag_capacity() / 2
    )
    paths = PathSet.k_shortest(topology, pairs, num_primary=4, num_backup=1)

    def experiment():
        rows = []
        for budget in BUDGET_ROWS:
            config = RahaConfig(
                demand_bounds=demand_envelope(demands),
                max_failures=budget, time_limit=60, mip_rel_gap=0.02,
            )
            result = RahaAnalyzer(topology, paths, config).analyze()
            rows.append(("-", budget, result.normalized_degradation))
        for threshold in THRESHOLD_ROWS:
            config = RahaConfig(
                demand_bounds=demand_envelope(demands),
                probability_threshold=threshold,
                time_limit=120, mip_rel_gap=0.02,
            )
            result = analyze_with_clustering(
                topology, paths, config, num_clusters=4, seed=0,
            )
            rows.append((threshold, "inf", result.normalized_degradation))
        return rows

    rows = run_once(benchmark, experiment)
    print_table(
        "Table 4: Cogentco-like degradation grid (4 clusters)",
        ["T", "max failures", "degradation"], rows,
    )
    budget_rows = {k: d for t, k, d in rows if k != "inf"}
    inf_rows = {t: d for t, k, d in rows if k == "inf"}
    # Budget-tracking: degradation grows with k (paper: 1/2/4 -> 1/2/4).
    assert budget_rows[1] <= budget_rows[2] + 1e-6 <= budget_rows[4] + 1e-5
    # Unlimited probable failures grow as the threshold drops.
    assert inf_rows[1e-2] >= inf_rows[1e-1] - 1e-6
