"""Figure 6: the Figure 5 experiments under CE constraints.

Paper claims: with connected-enforcement (no scenario may take down all
of a demand's paths -- the production configuration), "the worst-case
degradation decreases but we still find higher degradations compared to
those solutions that limit the number of failures they allow".

Both series (plain and CE) run as *one* sweep campaign through the
:mod:`repro.runner` subsystem: ``connected_enforced`` is just another
cell parameter, so the whole figure is a single non-rectangular job
list -- the declarative shape ``python -m repro sweep`` executes.
"""

import pytest

from benchmarks.conftest import BUDGETS, THRESHOLDS, run_once
from benchmarks.test_fig5_probabilities_matter import BENCH_JOBS
from repro.analysis.experiments import degradation_sweep_spec, sweep_cells
from repro.analysis.reporting import print_table
from repro.runner.executor import run_sweep


@pytest.mark.parametrize("mode", ["avg", "variable"])
def test_fig6_ce_degradation_vs_threshold(benchmark, wan, mode):
    paths = wan.paths(num_primary=2, num_backup=1)
    cells = (
        sweep_cells(THRESHOLDS, [None], connected_enforced=False)
        + sweep_cells(THRESHOLDS, BUDGETS, connected_enforced=True)
    )
    spec = degradation_sweep_spec(wan, paths, mode, cells,
                                  time_limit=60.0, name=f"fig6-{mode}")

    def experiment():
        outcome = run_sweep(spec, num_workers=BENCH_JOBS)
        outcome.raise_on_error()
        plain, ce = [], []
        for result in outcome.results():
            row = (
                "-" if result["threshold"] is None else result["threshold"],
                "inf" if result["max_failures"] is None
                else result["max_failures"],
                result["normalized_degradation"],
            )
            (ce if result["connected_enforced"] else plain).append(row)
        return plain, ce

    plain, ce = run_once(benchmark, experiment)
    print_table(
        f"Figure 6 ({mode}): degradation vs threshold under CE",
        ["threshold", "max failures", "degradation"], ce,
    )
    plain_by_t = {t: d for t, k, d in plain if k == "inf"}
    ce_by_t = {t: d for t, k, d in ce if k == "inf"}
    # CE can only shrink the feasible scenario set.
    for t in ce_by_t:
        assert ce_by_t[t] <= plain_by_t[t] + 1e-6
    # And the Raha series still grows as the threshold drops.
    ts = sorted(ce_by_t, reverse=True)
    for a, b in zip(ts, ts[1:]):
        assert ce_by_t[b] >= ce_by_t[a] - 1e-6
