"""Figure 6: the Figure 5 experiments under CE constraints.

Paper claims: with connected-enforcement (no scenario may take down all
of a demand's paths -- the production configuration), "the worst-case
degradation decreases but we still find higher degradations compared to
those solutions that limit the number of failures they allow".
"""

import pytest

from benchmarks.conftest import BUDGETS, THRESHOLDS, run_once
from repro.analysis.experiments import degradation_sweep
from repro.analysis.reporting import print_table


@pytest.mark.parametrize("mode", ["avg", "variable"])
def test_fig6_ce_degradation_vs_threshold(benchmark, wan, mode):
    paths = wan.paths(num_primary=2, num_backup=1)

    def experiment():
        plain = degradation_sweep(
            wan, paths, mode, THRESHOLDS, [None], time_limit=60.0,
        )
        ce = degradation_sweep(
            wan, paths, mode, THRESHOLDS, BUDGETS,
            connected_enforced=True, time_limit=60.0,
        )
        return plain, ce

    plain, ce = run_once(benchmark, experiment)
    print_table(
        f"Figure 6 ({mode}): degradation vs threshold under CE",
        ["threshold", "max failures", "degradation"], ce,
    )
    plain_by_t = {t: d for t, k, d in plain if k == "inf"}
    ce_by_t = {t: d for t, k, d in ce if k == "inf"}
    # CE can only shrink the feasible scenario set.
    for t in ce_by_t:
        assert ce_by_t[t] <= plain_by_t[t] + 1e-6
    # And the Raha series still grows as the threshold drops.
    ts = sorted(ce_by_t, reverse=True)
    for a, b in zip(ts, ts[1:]):
        assert ce_by_t[b] >= ce_by_t[a] - 1e-6
