"""Shared fixtures and calibration constants for the figure benchmarks.

Every benchmark regenerates one figure or table of the paper on a
scaled-down instance (see DESIGN.md's scaling note).  The constants here
freeze the calibration so all figures run on the same WAN, like the
paper's evaluation does.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import BenchNetwork, bench_wan

#: The standard scaled-down production WAN used by most figures.  The
#: calibration (seed, demand pressure, LAG multiplicity, probability-
#: mixture density) was chosen once so the instance reproduces the
#: paper's Figure 5 shape -- Raha's unlimited series beats the k <= 2
#: baselines at every probability threshold -- and is then shared by all
#: figures, as in the paper.
WAN_KWARGS = dict(num_regions=3, nodes_per_region=5, num_pairs=10,
                  demand_to_capacity=1.4, seed=1)

#: Probability thresholds swept on the x axis (the paper uses 1e-1..1e-7).
THRESHOLDS = [1e-1, 1e-2, 1e-4, 1e-7]

#: Failure budgets for the prior-work baselines plus Raha's unlimited run.
BUDGETS = [1, 2, 4, None]

#: Per-solve time budget (seconds).  The paper gives Gurobi 1000 s; our
#: instances are ~1/5 scale and HiGHS needs far less.
TIME_LIMIT = 60.0


@pytest.fixture(scope="session")
def wan() -> BenchNetwork:
    """The standard benchmark WAN (shared across benchmark files)."""
    return bench_wan(**WAN_KWARGS)


#: The augment benchmarks (Figures 11/17/18) use a milder instance: the
#: standard WAN's 1.4x demand pressure means *every* failure hurts, so
#: the augment loop would chase a new scenario per solid link.  At 0.55x
#: pressure the loop converges in the paper's 2-6 steps.
AUGMENT_WAN_KWARGS = dict(num_regions=3, nodes_per_region=5, num_pairs=6,
                          demand_to_capacity=0.55, seed=1)


@pytest.fixture(scope="session")
def augment_wan() -> BenchNetwork:
    """The milder WAN used by the capacity-augment figures."""
    return bench_wan(**AUGMENT_WAN_KWARGS)


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are deterministic MILP solves taking seconds to
    minutes; statistical repetition would waste the CI budget without
    adding information.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def pytest_terminal_summary(terminalreporter):
    """Replay every figure/table after the test run.

    Benchmarks print their tables while pytest captures stdout, so the
    inline copies vanish from a plain ``pytest benchmarks/`` run.  The
    tables are recorded by :func:`repro.analysis.reporting.print_table`
    and written here, through the terminal reporter, where redirected
    output (``| tee bench_output.txt``) sees them exactly once.
    """
    from repro.analysis import reporting

    if not reporting.recorded_tables:
        return
    terminalreporter.section("figure and table reproductions")
    for text in reporting.recorded_tables:
        terminalreporter.write_line("")
        terminalreporter.write_line(text)
