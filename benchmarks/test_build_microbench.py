"""Microbenchmark: array-backed model compilation vs scalar modeling.

The solver layer's hot path is ``Model._ensure_compiled`` -- every job in
a sweep assembles a constraint matrix before HiGHS sees it.  This
benchmark builds the *same* edge-formulation MCF over the standard bench
WAN twice: once term-by-term through ``add_constr`` (how the builders
worked before the array fast path) and once through
``add_constrs_batch``.  It asserts the two compile to identical matrices
with identical optima, and that the batch path is decisively faster.

A second case times one Figure 5 sweep cell end to end -- the smoke test
CI runs on every push -- and checks the per-solve telemetry that the
sweep summary line aggregates.
"""

from __future__ import annotations

import time
from collections import defaultdict

import numpy as np

from benchmarks.conftest import run_once
from repro.analysis.reporting import print_table
from repro.solver import Model, quicksum
from repro.solver.expr import LinExpr
from repro.te.base import effective_capacities

#: Asserted speedup floor.  The observed ratio is ~5-20x; 1.8x keeps the
#: assertion meaningful while tolerating noisy shared CI machines.
MIN_SPEEDUP = 1.8


def _edge_mcf_scalar(topology, demands):
    """The pre-fast-path builder: one ``add_constr`` per row."""
    caps = effective_capacities(topology, None)
    model = Model("edge-mcf-scalar")
    routed = {}
    per_lag = defaultdict(list)
    balance_rows = []
    for pair, volume in demands.items():
        src, dst = pair
        f_k = model.add_var(ub=max(volume, 0.0), name=f"f[{pair}]")
        routed[pair] = f_k
        outgoing = defaultdict(list)
        incoming = defaultdict(list)
        for lag in topology.lags:
            fwd = model.add_var(name=f"e[{pair}][{lag.key}]+")
            bwd = model.add_var(name=f"e[{pair}][{lag.key}]-")
            per_lag[lag.key] += [fwd, bwd]
            outgoing[lag.u].append(fwd)
            incoming[lag.v].append(fwd)
            outgoing[lag.v].append(bwd)
            incoming[lag.u].append(bwd)
        for node in topology.nodes:
            expr = quicksum(outgoing[node]) - quicksum(incoming[node])
            if node == src:
                expr = expr - f_k
            elif node == dst:
                expr = expr + f_k
            balance_rows.append((expr, node))
    for expr, _ in balance_rows:
        model.add_constr(expr == 0.0, name="balance")
    for key, vars_on_lag in per_lag.items():
        model.add_constr(quicksum(vars_on_lag) <= caps[key], name="cap")
    model.set_objective(quicksum(list(routed.values())), sense="max")
    return model


def _edge_mcf_batch(topology, demands):
    """The array fast path: identical rows via ``add_constrs_batch``."""
    caps = effective_capacities(topology, None)
    model = Model("edge-mcf-batch")
    routed = {}
    per_lag = defaultdict(list)
    bal_cols: list[int] = []
    bal_data: list[float] = []
    bal_indptr: list[int] = [0]
    lags = list(topology.lags)
    for pair, volume in demands.items():
        src, dst = pair
        f_k = model.add_var(ub=max(volume, 0.0), name=f"f[{pair}]")
        routed[pair] = f_k
        outgoing = defaultdict(list)
        incoming = defaultdict(list)
        base = model.num_vars
        model.add_vars_batch(2 * len(lags), name=f"e[{pair}]")
        for j, lag in enumerate(lags):
            fwd = base + 2 * j
            bwd = fwd + 1
            per_lag[lag.key] += [fwd, bwd]
            outgoing[lag.u].append(fwd)
            incoming[lag.v].append(fwd)
            outgoing[lag.v].append(bwd)
            incoming[lag.u].append(bwd)
        for node in topology.nodes:
            cols = outgoing[node]
            bal_cols.extend(cols)
            bal_data.extend([1.0] * len(cols))
            cols = incoming[node]
            bal_cols.extend(cols)
            bal_data.extend([-1.0] * len(cols))
            if node == src:
                bal_cols.append(f_k.index)
                bal_data.append(-1.0)
            elif node == dst:
                bal_cols.append(f_k.index)
                bal_data.append(1.0)
            bal_indptr.append(len(bal_cols))
    model.add_constrs_batch(
        bal_indptr, bal_cols, bal_data, sense="==", rhs=0.0, name="balance"
    )
    lag_cols: list[int] = []
    lag_indptr: list[int] = [0]
    lag_rhs: list[float] = []
    for key, cols_on_lag in per_lag.items():
        lag_cols.extend(cols_on_lag)
        lag_indptr.append(len(lag_cols))
        lag_rhs.append(caps[key])
    model.add_constrs_batch(lag_indptr, lag_cols, rhs=lag_rhs, name="cap")
    model.set_objective(
        LinExpr.from_arrays(
            np.fromiter((v.index for v in routed.values()), dtype=np.intp,
                        count=len(routed)),
            np.ones(len(routed)),
        ),
        sense="max",
    )
    return model


def _build_and_compile(builder, topology, demands):
    """Wall time for model build + matrix compile, and the compiled model."""
    started = time.perf_counter()
    model = builder(topology, demands)
    model._ensure_compiled()
    return time.perf_counter() - started, model


def test_batch_compile_speedup(benchmark):
    # A dedicated, larger WAN than the figure benchmarks': the edge MCF
    # defines two directed flow variables per (pair, LAG), so pair count
    # scales the model into the tens of thousands of nonzeros where
    # per-term Python costs dominate the scalar path.
    from repro.analysis.experiments import bench_wan

    net = bench_wan(num_regions=4, nodes_per_region=6, num_pairs=64,
                    demand_to_capacity=1.4, seed=1)
    demands = dict(net.avg_demands)
    topology = net.topology

    def run():
        # Warm both paths once so allocator/import effects cancel out.
        _build_and_compile(_edge_mcf_scalar, topology, demands)
        _build_and_compile(_edge_mcf_batch, topology, demands)
        scalar_s, scalar_m = _build_and_compile(
            _edge_mcf_scalar, topology, demands
        )
        batch_s, batch_m = _build_and_compile(
            _edge_mcf_batch, topology, demands
        )
        return scalar_s, scalar_m, batch_s, batch_m

    scalar_s, scalar_m, batch_s, batch_m = run_once(benchmark, run)

    # Identical formulations: same matrices, bit-identical optima.
    sc = scalar_m._compile()
    ba = batch_m._compile()
    np.testing.assert_array_equal(sc[0], ba[0])
    assert (sc[1] != ba[1]).nnz == 0
    for i in (2, 3, 4, 5):
        np.testing.assert_array_equal(sc[i], ba[i])
    r_scalar = scalar_m.solve()
    r_batch = batch_m.solve()
    assert r_batch.objective == r_scalar.objective

    speedup = scalar_s / batch_s
    print_table(
        "solver-layer build+compile microbenchmark (edge MCF)",
        ["path", "rows", "nnz", "seconds", "speedup"],
        [
            ("scalar add_constr", r_scalar.stats.rows, r_scalar.stats.nnz,
             f"{scalar_s:.4f}", "1.0x"),
            ("add_constrs_batch", r_batch.stats.rows, r_batch.stats.nnz,
             f"{batch_s:.4f}", f"{speedup:.1f}x"),
        ],
    )
    assert speedup >= MIN_SPEEDUP, (
        f"batch build+compile only {speedup:.2f}x faster "
        f"(scalar {scalar_s:.4f}s vs batch {batch_s:.4f}s)"
    )


def test_fig5_smoke_cell(benchmark, wan):
    """One Figure 5 cell end to end -- the CI benchmark smoke step."""
    from repro.analysis.experiments import degradation_sweep_spec
    from repro.runner.executor import run_sweep

    paths = wan.paths(num_primary=2, num_backup=1)
    spec = degradation_sweep_spec(
        wan, paths, "avg",
        [{"threshold": None, "max_failures": 1}],
        time_limit=60.0, name="fig5-smoke",
    )

    outcome = run_once(
        benchmark, lambda: run_sweep(spec, num_workers=1)
    )
    outcome.raise_on_error()
    (result,) = outcome.results()
    assert result["normalized_degradation"] >= 0.0
    stats = result["stats"]
    assert stats["backend"] == "milp"
    assert stats["rows"] > 0 and stats["nnz"] > 0
    totals = outcome.stats_totals()
    assert totals["jobs_with_stats"] == 1
    assert totals["solve_seconds"] > 0.0
