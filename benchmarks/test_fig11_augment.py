"""Figure 11: augment LAGs until probable failures cannot degrade.

Paper setup: iterative augments where the *added capacity can itself
fail* (probability = the LAG's average); T = 1e-4; sweep demand slack.
Claims: convergence "in less than 6 steps" (a); the average per-step
reduction in normalized degradation (b); the total links added grows
with the slack (c).
"""

from benchmarks.conftest import run_once
from repro import RahaConfig, augment_existing_lags, demand_envelope
from repro.analysis.reporting import print_table

SLACKS = [0, 100, 200]


def test_fig11_augment_with_failable_capacity(benchmark, augment_wan):
    wan = augment_wan
    paths = wan.paths(num_primary=2, num_backup=1)

    def experiment():
        rows = []
        for slack in SLACKS:
            config = RahaConfig(
                demand_bounds=demand_envelope(wan.avg_demands, slack=slack),
                probability_threshold=1e-4,
                time_limit=45, mip_rel_gap=0.01,
            )
            result = augment_existing_lags(
                wan.topology, paths, config,
                new_links_can_fail=True,
                tolerance=0.02 * wan.topology.average_lag_capacity(),
                max_steps=8,
            )
            rows.append((
                slack, result.num_steps, result.converged,
                result.average_reduction, result.total_links_added,
                result.initial_degradation
                / wan.topology.average_lag_capacity(),
            ))
        return rows

    rows = run_once(benchmark, experiment)
    print_table(
        "Figure 11: augment steps / reduction / links added vs slack "
        "(failable new capacity, T = 1e-4)",
        ["slack (%)", "steps", "converged", "avg reduction", "links added",
         "initial degradation"], rows,
    )
    for slack, steps, converged, reduction, links, initial in rows:
        assert converged, f"augment did not converge at slack {slack}"
        # Paper: "less than 6 steps" with failable capacity.
        assert steps <= 8
        if initial > 1e-9:
            assert links >= 1
    # Wider envelopes need at least as much capacity.
    links_series = [links for *_, links, _ in rows]
    assert links_series == sorted(links_series)
