"""Figure 15: with fixed max demands, the path count stops mattering.

Paper claim: repeating Figure 12 with demands fixed to the monthly
maximum, "the degradation does not depend on the number of paths because
Raha cannot manipulate the demand" to exploit shared failure modes --
the series is flat (within noise) instead of growing.
"""

import statistics

from benchmarks.conftest import run_once
from repro import RahaAnalyzer, RahaConfig
from repro.analysis.reporting import print_table

PRIMARY_COUNTS = [1, 2, 4, 8]


def test_fig15_fixed_demand_path_sweep(benchmark, wan):
    def experiment():
        rows = []
        for count in PRIMARY_COUNTS:
            paths = wan.paths(num_primary=count, num_backup=1)
            config = RahaConfig(
                fixed_demands=dict(wan.peak_demands),
                probability_threshold=1e-4,
                time_limit=60, mip_rel_gap=0.01,
            )
            result = RahaAnalyzer(wan.topology, paths, config).analyze()
            rows.append((count, result.normalized_degradation))
        return rows

    rows = run_once(benchmark, experiment)
    print_table(
        "Figure 15: degradation vs primary paths (fixed max demand)",
        ["primary paths", "degradation"], rows,
    )
    degs = [d for _, d in rows]
    # Flat-ish series: the spread around the mean is small relative to
    # the joint-mode dynamics of Figure 12 (paper shows ~constant lines).
    mean = statistics.fmean(degs)
    if mean > 1e-6:
        assert max(degs) - min(degs) <= max(1.0, mean), (
            "fixed-demand series should not swing wildly with path count"
        )
