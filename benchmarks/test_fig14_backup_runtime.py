"""Figure 14: runtime vs number of backup paths.

Paper claims: runtime grows with the number of backup paths, and "the big
reason for this is the path computation itself" -- excluding path
computation, the solve time grows much less.  All runs finish within the
budget.
"""

from benchmarks.conftest import run_once
from repro import RahaConfig, demand_envelope
from repro.analysis.experiments import timed_analysis
from repro.analysis.reporting import print_table

BACKUP_COUNTS = [0, 1, 2, 3]


def test_fig14_runtime_vs_backups(benchmark, wan):
    def experiment():
        rows = []
        for backups in BACKUP_COUNTS:
            paths = wan.paths(num_primary=2, num_backup=backups)
            config = RahaConfig(
                demand_bounds=demand_envelope(wan.peak_demands),
                probability_threshold=1e-4,
                time_limit=120,
            )
            result, wall = timed_analysis(wan.topology, paths, config)
            rows.append((
                backups, wall, paths.computation_seconds,
                wall - paths.computation_seconds, result.num_variables,
            ))
        return rows

    rows = run_once(benchmark, experiment)
    print_table(
        "Figure 14: runtime vs number of backup paths",
        ["backups", "wall (s)", "path comp (s)", "solve-only (s)",
         "variables"], rows,
    )
    # More backups -> strictly more model variables.
    sizes = [v for *_, v in rows]
    assert sizes == sorted(sizes)
    # Reported wall time always includes the path computation.
    for _, wall, path_seconds, solve_only, _ in rows:
        assert wall >= path_seconds
        assert abs((path_seconds + solve_only) - wall) < 1e-9
