"""Figure 5: probabilities matter -- k <= 2 analysis under-reports.

Paper claims: the worst-case degradation found when considering *all*
failure scenarios above a probability threshold is much higher than what
up-to-k analysis (k <= 2, probability-unaware) finds: "at least 2x
higher" across demand modes at T = 1e-4..1e-7, with the gap growing as
the threshold drops.  Panels: (a) fixed average demands, (b) fixed
maximum demands, (c) variable demands.

The grid runs through the :mod:`repro.runner` sweep subsystem -- each
(threshold, budget) cell is an independent job, exactly how the
operational ``python -m repro sweep`` executes campaigns.  Set
``REPRO_BENCH_JOBS>1`` to run the cells on worker processes.
"""

import math
import os

import pytest

from benchmarks.conftest import BUDGETS, THRESHOLDS, run_once
from repro.analysis.experiments import (
    degradation_sweep_spec,
    sweep_cells,
    sweep_rows,
)
from repro.analysis.reporting import print_table
from repro.runner.executor import run_sweep

#: Worker processes for the benchmark grids (1 = in-process/serial, the
#: CI default; the numbers are identical either way).
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))


def _check_shape(rows):
    inf_by_t = {t: d for t, k, d in rows if k == "inf"}
    k_by_budget = {k: d for t, k, d in rows if k != "inf"}
    # Prior-work budgets: degradation grows with k.
    ks = sorted(k_by_budget)
    for a, b in zip(ks, ks[1:]):
        assert k_by_budget[b] >= k_by_budget[a] - 1e-6
    # Raha's series grows as the threshold drops (supersets of scenarios).
    ts = sorted(inf_by_t, reverse=True)
    for a, b in zip(ts, ts[1:]):
        assert inf_by_t[b] >= inf_by_t[a] - 1e-6
    # The headline: at the lowest threshold Raha exceeds the k=2 tools.
    lowest = min(inf_by_t)
    if k_by_budget.get(2, 0) > 1e-9:
        ratio = inf_by_t[lowest] / k_by_budget[2]
        assert ratio > 1.0, f"Raha should beat k=2 at T={lowest} ({ratio=})"
    return inf_by_t, k_by_budget


@pytest.mark.parametrize("mode", ["avg", "max", "variable"])
def test_fig5_degradation_vs_threshold(benchmark, wan, mode):
    paths = wan.paths(num_primary=2, num_backup=1)
    spec = degradation_sweep_spec(
        wan, paths, mode, sweep_cells(THRESHOLDS, BUDGETS),
        time_limit=60.0, name=f"fig5-{mode}",
    )

    def experiment():
        return sweep_rows(run_sweep(spec, num_workers=BENCH_JOBS))

    rows = run_once(benchmark, experiment)
    panel = {"avg": "a", "max": "b", "variable": "c"}[mode]
    print_table(
        f"Figure 5{panel}: degradation vs probability threshold ({mode})",
        ["threshold", "max failures", "degradation"], rows,
    )
    inf_by_t, k_by_budget = _check_shape(rows)
    lowest = min(inf_by_t)
    k2 = k_by_budget.get(2, float("nan"))
    if not math.isnan(k2) and k2 > 1e-9:
        print(f"\nratio Raha(T={lowest:g}) / k=2 baseline: "
              f"{inf_by_t[lowest] / k2:.2f} (paper: ~1.9-20.8x)")
