"""Figure 2: how many links can fail simultaneously with prob >= T.

Paper claim: even at a moderate availability target (T = 1e-2, i.e. 99%)
the number of links that can simultaneously fail within the probability
constraint reaches 15-20 on the production WAN, and it *decreases* as the
threshold rises -- the core argument against k <= 2 analysis.

This benchmark runs the exact computation (a uniform-value knapsack over
per-link log-odds, solved greedily) on the paper-scale synthetic
production WAN (72 nodes, ~330 LAGs, ~420 links).
"""

from repro.analysis.reporting import print_table
from repro.failures.probability import max_simultaneous_failures
from repro.network.generators import production_wan

THRESHOLDS = [1e-5, 1e-4, 1e-3, 1e-2, 1e-1]


def test_fig2_max_simultaneous_failures(benchmark):
    topology = production_wan(seed=0)  # paper-scale defaults

    def experiment():
        rows = []
        for threshold in THRESHOLDS:
            count, scenario = max_simultaneous_failures(topology, threshold)
            rows.append((threshold, count, scenario.num_failed_links))
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print_table(
        "Figure 2: max simultaneous link failures vs probability threshold",
        ["threshold", "max failures", "scenario size"], rows,
    )
    counts = [count for _, count, _ in rows]
    # Monotone nonincreasing in the threshold.
    assert counts == sorted(counts, reverse=True)
    # Double-digit failure counts are probable at low thresholds
    # (paper: 15-25 across its configurations).
    assert counts[0] >= 10
    # And still well above the k <= 2 regime at 99% availability.
    assert dict(zip(THRESHOLDS, counts))[1e-2] > 2
