"""Ablations of Raha's own design choices (DESIGN.md's encoding notes).

* ``exact_path_down``: the paper's Eq. 4 forces a path down when a LAG
  on it is down but not the converse; this repository optionally adds
  the tightening ``u_kp <= sum u_e``.  Ablation: solution quality must
  be identical with and without (the relaxation is sound), while model
  size differs.
* post-solve ``verify``: measures the overhead of the two verification
  passes (KKT re-solve + simulation) relative to the solve itself.
* ``mip_rel_gap``: a small optimality gap buys runtime at bounded cost
  in reported degradation.
"""

from benchmarks.conftest import run_once
from repro import RahaConfig, demand_envelope
from repro.analysis.experiments import timed_analysis
from repro.analysis.reporting import print_table


def test_ablation_exact_path_down(benchmark, wan):
    paths = wan.paths(num_primary=2, num_backup=1)

    def experiment():
        rows = []
        for exact in (True, False):
            config = RahaConfig(
                fixed_demands=dict(wan.avg_demands),
                probability_threshold=1e-4,
                exact_path_down=exact,
                time_limit=60,
            )
            result, wall = timed_analysis(wan.topology, paths, config)
            rows.append((exact, result.normalized_degradation, wall,
                         result.num_constraints))
        return rows

    rows = run_once(benchmark, experiment)
    print_table(
        "Ablation: exact vs relaxed path-down encoding",
        ["exact_path_down", "degradation", "wall (s)", "constraints"], rows,
    )
    exact_deg, relaxed_deg = rows[0][1], rows[1][1]
    # The relaxation is sound: same optimum either way.
    assert abs(exact_deg - relaxed_deg) <= 1e-4 * max(1.0, abs(exact_deg))
    # The exact form carries extra constraints.
    assert rows[0][3] > rows[1][3]


def test_ablation_verification_overhead(benchmark, wan):
    paths = wan.paths(num_primary=2, num_backup=1)

    def experiment():
        rows = []
        for verify in (True, False):
            config = RahaConfig(
                fixed_demands=dict(wan.avg_demands),
                probability_threshold=1e-4,
                verify=verify,
                time_limit=60,
            )
            result, wall = timed_analysis(wan.topology, paths, config)
            rows.append((verify, wall, result.verified))
        return rows

    rows = run_once(benchmark, experiment)
    print_table(
        "Ablation: post-solve verification overhead",
        ["verify", "wall (s)", "verified"], rows,
    )
    assert rows[0][2] is True
    assert rows[1][2] is False


def test_ablation_mip_gap(benchmark, wan):
    paths = wan.paths(num_primary=2, num_backup=1)

    def experiment():
        rows = []
        for gap in (None, 0.01, 0.1):
            config = RahaConfig(
                demand_bounds=demand_envelope(wan.peak_demands),
                probability_threshold=1e-4,
                mip_rel_gap=gap,
                time_limit=90,
            )
            result, wall = timed_analysis(wan.topology, paths, config)
            rows.append((gap if gap is not None else 0.0,
                         result.normalized_degradation, wall))
        return rows

    rows = run_once(benchmark, experiment)
    print_table(
        "Ablation: MIP relative gap vs quality and runtime",
        ["mip_rel_gap", "degradation", "wall (s)"], rows,
    )
    exact = rows[0][1]
    for gap, degradation, _ in rows[1:]:
        # A gap-g incumbent is within g of the optimum.
        assert degradation >= exact * (1 - gap) - 1e-6
