"""Scale benchmark: serial vs parallel Monte Carlo availability on B4.

Runs the same >= 500-sample availability campaign twice -- once through
the serial per-sample loop in :mod:`repro.failures.montecarlo`, once
through the vectorized + chunked-parallel engine in
:mod:`repro.failures.availability` at four workers -- and asserts the
two estimates are *bit-identical* (the engine's core contract) before
comparing wall clocks.

The speedup floor is only asserted on machines with enough cores to
host the worker pool; the identity checks always run, so a single-core
box still exercises the full parallel code path (pool, chunking, merge).
"""

from __future__ import annotations

import dataclasses
import itertools
import os
import time

from benchmarks.conftest import run_once
from repro.analysis.reporting import print_table
from repro.core.config import MonteCarloConfig
from repro.failures.availability import estimate_availability_parallel
from repro.failures.montecarlo import estimate_availability
from repro.network.demand import gravity_demands
from repro.network.zoo import b4
from repro.paths.pathset import PathSet

#: Campaign size (the floor is 500 samples on B4; 800 keeps the run
#: solve-dominated so the speedup measurement is not noise-bound).
SAMPLES = 800
SEED = 11
THRESHOLD = 1.0
WORKERS = 4
#: Distinct scenarios per worker chunk: big enough to amortize payload
#: shipping and the per-chunk resolver compile, small enough to balance
#: the pool.
CHUNK_SIZE = 48

#: Asserted speedup floor at four workers, only checked when the machine
#: actually has four cores to run them on.
MIN_SPEEDUP = 3.0


def _campaign():
    """B4 with boosted failure probabilities.

    The zoo's production-mixture probabilities are so small that 500
    samples collapse to a handful of distinct scenarios; boosting them
    makes the campaign solve-dominated, which is the regime the
    parallel engine targets (and the one production availability runs
    live in).
    """
    topology = b4()
    for lag in topology.lags:
        lag.links[:] = [
            dataclasses.replace(
                link,
                failure_probability=min(
                    0.3, (link.failure_probability or 0.0) * 500.0),
            )
            if link.can_fail and link.failure_probability is not None
            else link
            for link in lag.links
        ]
    nodes = sorted(topology.nodes)
    pairs = list(itertools.combinations(nodes, 2))[:20]
    demands = gravity_demands(topology, scale=5e5, pairs=pairs, seed=1)
    paths = PathSet.k_shortest(topology, pairs, num_primary=3,
                               num_backup=2)
    return topology, dict(demands), paths


def test_parallel_engine_matches_serial_and_scales(benchmark):
    topology, demands, paths = _campaign()

    def run():
        start = time.perf_counter()
        serial = estimate_availability(
            topology, demands, paths, samples=SAMPLES, seed=SEED,
            degradation_threshold=THRESHOLD,
        )
        serial_s = time.perf_counter() - start
        start = time.perf_counter()
        parallel = estimate_availability_parallel(
            topology, demands, paths,
            MonteCarloConfig(samples=SAMPLES, seed=SEED,
                             degradation_threshold=THRESHOLD,
                             num_workers=WORKERS,
                             chunk_size=CHUNK_SIZE),
        )
        parallel_s = time.perf_counter() - start
        return serial, serial_s, parallel, parallel_s

    serial, serial_s, parallel, parallel_s = run_once(benchmark, run)

    # Bit-identical statistics, not approximately-equal ones.
    assert parallel.degradations == serial.degradations
    assert parallel.expected_degradation == serial.expected_degradation
    assert parallel.availability == serial.availability
    assert parallel.exceedance_probability == \
        serial.exceedance_probability
    assert parallel.worst_sampled == serial.worst_sampled
    assert parallel.worst_scenario == serial.worst_scenario
    assert parallel.distinct_scenarios == serial.distinct_scenarios
    assert parallel.samples == SAMPLES

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    print_table(
        f"Monte Carlo availability at scale (B4, {SAMPLES} samples, "
        f"{parallel.distinct_scenarios} distinct)",
        ["engine", "workers", "seconds", "speedup"],
        [
            ["serial loop", 1, f"{serial_s:.2f}", "1.0x"],
            ["vectorized + pool", WORKERS, f"{parallel_s:.2f}",
             f"{speedup:.1f}x"],
        ],
    )

    if (os.cpu_count() or 1) >= WORKERS:
        assert speedup >= MIN_SPEEDUP, (
            f"parallel engine managed only {speedup:.2f}x over serial "
            f"(floor {MIN_SPEEDUP}x at {WORKERS} workers)"
        )
