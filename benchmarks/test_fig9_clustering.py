"""Figure 9: impact of the number of clusters on quality and runtime.

Paper setup: a shared total solver budget ``t`` is divided by the number
of Gurobi runs clustering makes; with a limited failure count clustering
"does not impact results", while for arbitrary failure scenarios it
trades ~15% degradation for ~69% faster runtimes.
"""

from benchmarks.conftest import run_once
from repro import RahaConfig, analyze_with_clustering, demand_envelope
from repro.analysis.experiments import timed_analysis
from repro.analysis.reporting import print_table

CLUSTER_COUNTS = [2, 4, 8]
TOTAL_BUDGET = 120.0


def test_fig9_clustering_quality_and_runtime(benchmark, wan):
    paths = wan.paths(num_primary=2, num_backup=1)

    def experiment():
        rows = []
        config = RahaConfig(
            demand_bounds=demand_envelope(wan.peak_demands),
            probability_threshold=1e-4,
            time_limit=TOTAL_BUDGET, mip_rel_gap=0.01,
        )
        flat, flat_wall = timed_analysis(wan.topology, paths, config)
        rows.append((0, flat.normalized_degradation, flat_wall))
        for clusters in CLUSTER_COUNTS:
            result = analyze_with_clustering(
                wan.topology, paths, config, num_clusters=clusters, seed=0,
            )
            rows.append((clusters, result.normalized_degradation,
                         result.solve_seconds))
        return rows

    rows = run_once(benchmark, experiment)
    print_table(
        "Figure 9: degradation (left) and runtime (right) vs #clusters",
        ["clusters", "degradation", "wall (s)"], rows,
    )
    flat_deg = rows[0][1]
    for clusters, deg, _ in rows[1:]:
        # Clustering sacrifices optimality, never gains it.
        assert deg <= flat_deg + 1e-4
        # But it should retain most of the degradation (paper: -15%).
        if flat_deg > 1e-6:
            assert deg >= 0.3 * flat_deg - 1e-6
