"""Figure 8: Uninett2010 with and without clustering.

Paper setup: Uninett2010 (74 nodes / 202 directed edges), 4 primary and 1
backup path, demands upper-bounded at half the average LAG capacity
(= 500) so no single demand creates a bottleneck; degradation normalized
by the average LAG capacity (1000).  The paper uses this case to show why
clustering is needed when the search space is large: without clusters the
solver stalls at low thresholds.

We run the same configuration on the Uninett2010-shaped instance with a
reduced pair count (the joint all-pairs MILP does not fit the CI budget;
see DESIGN.md's scaling note).
"""

from benchmarks.conftest import run_once
from repro import (
    PathSet,
    RahaAnalyzer,
    RahaConfig,
    analyze_with_clustering,
    demand_envelope,
    gravity_demands,
)
from repro.analysis.reporting import print_table
from repro.network.demand import top_pairs
from repro.network.zoo import uninett2010_like

THRESHOLDS = [1e-1, 1e-4]


def test_fig8_uninett_clusters(benchmark):
    topology = uninett2010_like(seed=0)
    demands = gravity_demands(
        topology, scale=40 * topology.average_lag_capacity(), seed=0
    )
    pairs = top_pairs(demands, 8)
    demands = demands.restricted_to(pairs).capped(
        topology.average_lag_capacity() / 2  # the paper's demand cap
    )
    paths = PathSet.k_shortest(topology, pairs, num_primary=4, num_backup=1)

    def experiment():
        rows = []
        for threshold in THRESHOLDS:
            config = RahaConfig(
                demand_bounds=demand_envelope(demands),
                probability_threshold=threshold,
                time_limit=90, mip_rel_gap=0.02,
            )
            flat = RahaAnalyzer(topology, paths, config).analyze()
            rows.append((threshold, "none", flat.normalized_degradation,
                         flat.total_seconds))
            clustered = analyze_with_clustering(
                topology, paths, config, num_clusters=2, seed=0,
            )
            rows.append((threshold, "2", clustered.normalized_degradation,
                         clustered.solve_seconds))
        return rows

    rows = run_once(benchmark, experiment)
    print_table(
        "Figure 8: Uninett2010-like, no clusters vs 2 clusters",
        ["threshold", "clusters", "degradation", "wall (s)"], rows,
    )
    flat = {t: d for t, c, d, _ in rows if c == "none"}
    clustered = {t: d for t, c, d, _ in rows if c == "2"}
    for t in flat:
        # Clustering approximates the demand: <= the joint optimum.
        assert clustered[t] <= flat[t] + 1e-4
        assert clustered[t] >= 0 or abs(clustered[t]) < 1e-6
