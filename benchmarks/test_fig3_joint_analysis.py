"""Figure 3: joint analysis beats peak-demand baselines.

Paper setup: fix demands to the monthly average, progressively allow
them to increase by a slack, and search only for failures minimizing the
failed network's performance (the prior-work recipe), evaluated as a
*degradation* against the design point.  Compare with Raha searching
demands and failures jointly for the maximum degradation in the same
range.

Paper claim: Raha dominates both baselines at every slack -- setting the
demand to its peak does NOT reveal the maximum degradation, because
backup-path activation makes the worst demand depend on the network's
design point (Section 2.3).
"""

from benchmarks.conftest import run_once
from repro import RahaAnalyzer, RahaConfig, demand_envelope
from repro.analysis.reporting import print_table
from repro.baselines.naive import naive_fixed_peak

SLACKS = [0, 40, 80, 140]


def test_fig3_raha_vs_peak_baselines(benchmark, wan):
    paths = wan.paths(num_primary=1, num_backup=1)  # the paper: 1 backup

    # Start from a 0.35x-scaled average so the slack sweep has headroom
    # to matter (the shared bench instance saturates capacity by design).
    base = wan.avg_demands.scaled(0.35)

    def experiment():
        rows = []
        avg_base = naive_fixed_peak(
            wan.topology, paths, dict(base),
            probability_threshold=1e-4, time_limit=60,
        )
        for slack in SLACKS:
            factor = 1.0 + slack / 100.0
            # Baseline "Max": demands fixed at the top of the range
            # (average * (1 + slack)); failures minimize performance.
            max_base = naive_fixed_peak(
                wan.topology, paths,
                {p: v * factor for p, v in base.items()},
                probability_threshold=1e-4, time_limit=60,
            )
            # Raha: joint search inside the same envelope.
            raha = RahaAnalyzer(
                wan.topology, paths,
                RahaConfig(
                    demand_bounds=demand_envelope(base, slack=slack),
                    probability_threshold=1e-4, time_limit=90,
                    mip_rel_gap=0.01,
                ),
            ).analyze()
            rows.append((
                slack,
                raha.normalized_degradation,
                max_base.normalized_degradation,
                avg_base.normalized_degradation,
            ))
        return rows

    rows = run_once(benchmark, experiment)
    print_table(
        "Figure 3: degradation vs slack -- Raha vs Max/Average baselines",
        ["slack (%)", "Raha", "Max baseline", "Avg baseline"], rows,
    )
    for slack, raha, max_base, avg_base in rows:
        # Raha's joint optimum dominates both fixed-demand baselines
        # (they search a subset of its space).
        assert raha >= max_base - 1e-4
        assert raha >= avg_base - 1e-4
    # Raha's curve grows with slack.
    raha_series = [r for _, r, _, _ in rows]
    for a, b in zip(raha_series, raha_series[1:]):
        assert b >= a - 1e-6
