"""Figure 12: how the number of paths changes the degradation found.

Paper claims (Appendix D.1): with plain k-shortest paths, *more primary
paths does not monotonically reduce* the degradation -- KSP paths share
LAGs, and the adversary "exploits the increase in shared failure modes".
The same holds with CE constraints (12b), and for backup paths (12c)
cascading fail-overs can spread damage.
"""

from benchmarks.conftest import run_once
from repro import RahaAnalyzer, RahaConfig, demand_envelope
from repro.analysis.reporting import print_table

PRIMARY_COUNTS = [1, 2, 4, 8]
BACKUP_COUNTS = [0, 1, 2, 4]


def _joint(wan, **kwargs):
    kwargs.setdefault("time_limit", 90)
    kwargs.setdefault("mip_rel_gap", 0.01)
    return RahaConfig(demand_bounds=demand_envelope(wan.peak_demands),
                      **kwargs)


def test_fig12a_degradation_vs_primary_paths(benchmark, wan):
    def experiment():
        rows = []
        for count in PRIMARY_COUNTS:
            paths = wan.paths(num_primary=count, num_backup=1)
            result = RahaAnalyzer(
                wan.topology, paths,
                _joint(wan, probability_threshold=1e-4),
            ).analyze()
            rows.append((count, result.normalized_degradation))
        return rows

    rows = run_once(benchmark, experiment)
    print_table(
        "Figure 12a: degradation vs number of primary paths (plain KSP)",
        ["primary paths", "degradation"], rows,
    )
    degs = [d for _, d in rows]
    assert all(d >= 0 or abs(d) < 1e-6 for d in degs)
    # The paper's point is the absence of a guaranteed decrease: the
    # series must NOT be strictly decreasing everywhere.
    strictly_decreasing = all(a > b + 1e-9 for a, b in zip(degs, degs[1:]))
    assert not strictly_decreasing


def test_fig12b_degradation_vs_primary_paths_ce(benchmark, wan):
    def experiment():
        rows = []
        for count in PRIMARY_COUNTS:
            paths = wan.paths(num_primary=count, num_backup=1)
            result = RahaAnalyzer(
                wan.topology, paths,
                _joint(wan, probability_threshold=1e-4,
                       connected_enforced=True),
            ).analyze()
            rows.append((count, result.normalized_degradation))
        return rows

    rows = run_once(benchmark, experiment)
    print_table(
        "Figure 12b: degradation vs number of primary paths (CE)",
        ["primary paths", "degradation"], rows,
    )
    assert len(rows) == len(PRIMARY_COUNTS)


def test_fig12c_degradation_vs_backup_paths(benchmark, wan):
    def experiment():
        rows = []
        for count in BACKUP_COUNTS:
            paths = wan.paths(num_primary=2, num_backup=count)
            result = RahaAnalyzer(
                wan.topology, paths,
                _joint(wan, probability_threshold=1e-4),
            ).analyze()
            rows.append((count, result.normalized_degradation))
        return rows

    rows = run_once(benchmark, experiment)
    print_table(
        "Figure 12c: degradation vs number of backup paths",
        ["backup paths", "degradation"], rows,
    )
    degs = [d for _, d in rows]
    # Backups can only help the *network* at fixed failures, but the
    # adversary re-optimizes; the paper finds no monotone trend.  We
    # assert the weaker, always-true property: nonnegative values.
    assert all(d >= -1e-6 for d in degs)
